// Tests for select_any (src/async/select.hpp): one coroutine awaiting N
// queues through N AsyncWaiter nodes that share a single RoundCore.
//
// The property under test everywhere: exactly one claimant wins, losing
// registrations are cancelled without leaking waiter counts (every test
// ends by asserting waiters()==0 on every queue), and a notify consumed by
// a losing registration is passed back to its queue instead of vanishing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "async/async_queue.hpp"
#include "async/select.hpp"

namespace {

using wfq::async::AsyncScqQueue;
using wfq::async::AsyncWFQueue;
using wfq::async::on;
using wfq::async::select_any;
using wfq::async::SelectResult;
using wfq::async::sync_wait;
using wfq::async::Task;
using wfq::sync::PopStatus;

TEST(SelectAny, TakesAnAlreadyReadyQueueWithoutParking) {
  AsyncWFQueue<int> q1, q2;
  auto h1 = q1.get_handle();
  auto h2 = q2.get_handle();
  ASSERT_TRUE(q2.push(h2, 55));

  auto r = sync_wait(select_any(on(q1, h1), on(q2, h2)));
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.index, 1u);
  EXPECT_EQ(*r.value, 55);
  EXPECT_EQ(q1.waiters(), 0u);
  EXPECT_EQ(q2.waiters(), 0u);
}

TEST(SelectAny, ParksOnBothQueuesAndTheLoserRegistrationIsCancelled) {
  AsyncWFQueue<int> q1, q2;
  auto h1 = q1.get_handle();
  auto h2 = q2.get_handle();

  std::thread consumer([&] {
    auto r = sync_wait(select_any(on(q1, h1), on(q2, h2)));
    ASSERT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.index, 0u);
    EXPECT_EQ(*r.value, 7);
  });

  // Both registrations count into their queues' waiter words — the select
  // IS a waiter on every queue it watches.
  while (q1.waiters() == 0 || q2.waiters() == 0) std::this_thread::yield();
  auto hp = q1.get_handle();
  ASSERT_TRUE(q1.push(hp, 7));
  consumer.join();

  // The q2 registration lost and was cancelled: no leaked count.
  EXPECT_EQ(q1.waiters(), 0u);
  EXPECT_EQ(q2.waiters(), 0u);
}

TEST(SelectAny, ReportsClosedOnlyWhenEveryQueueIsSealedAndDrained) {
  AsyncWFQueue<int> q1, q2;
  auto h1 = q1.get_handle();
  auto h2 = q2.get_handle();

  q1.close();  // one closed queue just drops out of the race
  ASSERT_TRUE(q2.push(h2, 3));
  auto r = sync_wait(select_any(on(q1, h1), on(q2, h2)));
  ASSERT_EQ(r.status, PopStatus::kOk);
  EXPECT_EQ(r.index, 1u);
  EXPECT_EQ(*r.value, 3);

  q2.close();
  r = sync_wait(select_any(on(q1, h1), on(q2, h2)));
  EXPECT_EQ(r.status, PopStatus::kClosed);
  EXPECT_EQ(r.index, 2u);  // index == queue count encodes "none"
  EXPECT_FALSE(r.value.has_value());
}

TEST(SelectAny, ComposesAcrossDifferentInnerQueueTypes) {
  AsyncWFQueue<int> unbounded;
  AsyncScqQueue<int> ring(8);
  auto h1 = unbounded.get_handle();
  auto h2 = ring.get_handle();
  ASSERT_TRUE(ring.push(h2, 21));

  auto r = sync_wait(select_any(on(unbounded, h1), on(ring, h2)));
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.index, 1u);
  EXPECT_EQ(*r.value, 21);
}

// Collector coroutine: keep selecting until every queue reports done.
Task<void> collect_all(AsyncWFQueue<int>& q1,
                       AsyncWFQueue<int>::Handle& h1, AsyncWFQueue<int>& q2,
                       AsyncWFQueue<int>::Handle& h2,
                       std::vector<int>& from1, std::vector<int>& from2) {
  for (;;) {
    auto r = co_await select_any(on(q1, h1), on(q2, h2));
    if (!r) co_return;  // kClosed: both sealed and drained
    (r.index == 0 ? from1 : from2).push_back(*r.value);
  }
}

// The race the ISSUE names: both queues racing to deliver while one select
// coroutine arbitrates. Two producers push disjoint value ranges into
// their own queues as fast as they can; the collector must see every value
// exactly once and attribute each to the right queue, and the losing
// registration of every round must unwind without leaking a waiter count.
// TSan-labeled: the N claim callbacks race through one RoundCore here.
TEST(SelectAny, BothQueuesRacingToDeliverLoseNothingAndLeakNothing) {
  constexpr int kPerQueue = 4000;
  AsyncWFQueue<int> q1, q2;
  auto h1c = q1.get_handle();
  auto h2c = q2.get_handle();
  std::vector<int> from1, from2;

  std::thread collector([&] {
    sync_wait(collect_all(q1, h1c, q2, h2c, from1, from2));
  });
  std::thread p1([&] {
    auto h = q1.get_handle();
    for (int i = 0; i < kPerQueue; ++i) ASSERT_TRUE(q1.push(h, i));
    q1.close();
  });
  std::thread p2([&] {
    auto h = q2.get_handle();
    for (int i = 0; i < kPerQueue; ++i) {
      ASSERT_TRUE(q2.push(h, kPerQueue + i));
    }
    q2.close();
  });
  p1.join();
  p2.join();
  collector.join();

  ASSERT_EQ(from1.size(), static_cast<std::size_t>(kPerQueue));
  ASSERT_EQ(from2.size(), static_cast<std::size_t>(kPerQueue));
  std::vector<bool> seen(2 * kPerQueue, false);
  for (int x : from1) {
    ASSERT_GE(x, 0);
    ASSERT_LT(x, kPerQueue);  // attribution: queue 1's range only
    ASSERT_FALSE(seen[static_cast<std::size_t>(x)]);
    seen[static_cast<std::size_t>(x)] = true;
  }
  for (int x : from2) {
    ASSERT_GE(x, kPerQueue);
    ASSERT_LT(x, 2 * kPerQueue);
    ASSERT_FALSE(seen[static_cast<std::size_t>(x)]);
    seen[static_cast<std::size_t>(x)] = true;
  }
  EXPECT_EQ(q1.waiters(), 0u);
  EXPECT_EQ(q2.waiters(), 0u);
}

// A select must not STARVE a plain blocking consumer on the same queue:
// the pass-on rule (a losing claim re-notifies its queue) is what keeps a
// mixed population live. One select and one pop_wait thread share q1;
// values pushed to q1 must reach one of them, never evaporate.
TEST(SelectAny, MixedSelectAndBlockingConsumersStayLive) {
  constexpr int kValues = 2000;
  AsyncWFQueue<int> q1, q2;
  auto h1s = q1.get_handle();
  auto h2s = q2.get_handle();
  std::vector<int> via_select1, via_select2;
  std::vector<int> via_blocking;

  std::thread selecting([&] {
    sync_wait(collect_all(q1, h1s, q2, h2s, via_select1, via_select2));
  });
  std::thread blocking([&] {
    auto h = q1.get_handle();
    int v = 0;
    while (q1.blocking().pop_wait(h, v) == PopStatus::kOk) {
      via_blocking.push_back(v);
    }
  });

  auto hp = q1.get_handle();
  for (int i = 0; i < kValues; ++i) ASSERT_TRUE(q1.push(hp, i));
  q1.close();
  q2.close();
  selecting.join();
  blocking.join();

  std::vector<bool> seen(kValues, false);
  std::size_t total = 0;
  for (const auto* v : {&via_select1, &via_blocking}) {
    for (int x : *v) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(x)]);
      seen[static_cast<std::size_t>(x)] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kValues));
  EXPECT_TRUE(via_select2.empty());
  EXPECT_EQ(q1.waiters(), 0u);
  EXPECT_EQ(q2.waiters(), 0u);
}

}  // namespace
