// EventCount: Dekker-style waiter registration that lets producers skip the
// notify path entirely — with zero additional fences on x86 — whenever no
// consumer is parked.
//
// The problem it solves is the standard one for any blocking layer over a
// non-blocking queue: a consumer that observes EMPTY and goes to sleep must
// not miss a value enqueued concurrently. The classic solution (condition
// variable) taxes *every* enqueue with a lock or at least a fence. The
// EventCount splits the handshake:
//
//   consumer (rare, about to park)         producer (hot path)
//   --------------------------------       ------------------------------
//   waiters.fetch_add(1, seq_cst)  (W)     enqueue(v)              (E)
//   key = epoch.load(seq_cst)              if (waiters.load(seq_cst) == 0)
//   re-check queue: dequeue()      (D)         return;          // fast path
//   if EMPTY: futex_wait(epoch, key)       epoch.fetch_add(1); futex_wake()
//
// Why the producer's check is free on x86: a seq_cst *load* compiles to a
// plain MOV — the expensive half of seq_cst lands on stores and RMWs. The
// ordering the Dekker needs (E's deposit visible before the waiters load)
// is provided by the seq_cst FAA/CAS the wait-free enqueue already executes
// at its linearization point, exactly the way Listing 5's hazard-pointer
// publication is ordered by the fast path's FAA instead of an explicit
// MFENCE (§3.6; docs/ALGORITHM.md §10 gives the full proof sketch). So an
// enqueue with no waiters registered executes ZERO instructions it would
// not execute unwrapped — no fence, no RMW, one predictable-taken branch.
//
// Lost-wakeup argument (all four ops seq_cst, so they embed in the single
// total order S): if the producer's load misses the consumer's increment,
// then load <S W <S D, and the load follows E in program order, so
// E <S D — the consumer's re-check dequeue linearizes after the enqueue
// and cannot return EMPTY while the value is still in the queue. Either
// the re-check finds a value (no park) or some other consumer already took
// it (no wakeup owed). The epoch word closes the remaining window between
// the re-check and the futex syscall: notify bumps it, and the kernel
// (or parking lot) re-checks it atomically against the waiter's key.
//
// On non-TSO ISAs the producer-side argument additionally needs the
// enqueue's trailing RMW to be a *fence*, which seq_cst RMWs are not
// obliged to be portably; BlockingQueue inserts one explicit
// thread_fence(seq_cst) before the check on those targets (never on x86).
//
// PR 10 generalized the waiter side: besides a thread parked on the epoch
// futex, a waiter can now be an *async slot* (AsyncWaiter) carrying a
// resume callback — src/async/ registers coroutine handles through it.
// notify() claims registered slots and invokes their callbacks after
// bumping the epoch, so a single notify serves both kinds. Crucially the
// producer side is untouched: async registration feeds the same waiters_
// word the Dekker already reads, so the no-waiter fast path stays a MOV.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "sync/futex.hpp"

namespace wfq::sync {

/// `FutexT` is LinuxFutex or PortableFutex (see futex.hpp); the default is
/// the platform's best. Waiters and notifiers must agree on the instance.
template <class FutexT = Futex>
class BasicEventCount {
 public:
  /// Epoch snapshot handed from prepare_wait() to wait().
  using Key = uint32_t;

  /// Why wait()/wait_until() returned (re-exported futex tri-state; see
  /// futex.hpp). kNotified also covers "epoch moved before we slept".
  using WaitResult = WakeCause;

  // -------------------------------------------------------------- threads

  /// The producer-side check. Seq_cst load = plain MOV on x86 (see file
  /// header for why that suffices); call it after the publishing operation
  /// (the enqueue), never before.
  bool has_waiters() const noexcept {
    return waiters_.load(std::memory_order_seq_cst) != 0;
  }

  /// Registers the caller as a waiter and snapshots the epoch. After this
  /// the caller MUST re-check its predicate and then call exactly one of
  /// cancel_wait() / wait() / wait_until() — or hold the registration in a
  /// WaitGuard, which makes that pairing exception-safe.
  Key prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);  // full fence on x86
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Deregisters without sleeping (the re-check found the predicate true).
  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// Sleeps until an epoch bump (or spuriously); deregisters on return.
  /// The caller re-checks its predicate in a loop.
  WaitResult wait(Key key) noexcept {
    WaitResult r = FutexT::wait(epoch_, key);
    waiters_.fetch_sub(1, std::memory_order_release);
    return r;
  }

  /// Timed wait; kTimeout iff the deadline passed without a wake.
  /// Deregisters on return either way.
  WaitResult wait_until(Key key, WaitClock::time_point deadline) noexcept {
    WaitResult r = FutexT::wait_until(epoch_, key, deadline);
    waiters_.fetch_sub(1, std::memory_order_release);
    return r;
  }

  /// RAII wrapper for the prepare/re-check/wait-or-cancel protocol. The
  /// manual pairing leaked waiters_ permanently if anything between
  /// prepare_wait() and wait() threw or returned early (pinning every
  /// future enqueue onto the notify slow path); the guard's destructor
  /// cancels any registration that was never consumed by a wait. All
  /// blocking_queue.hpp park sites and every src/async/ path use it.
  class WaitGuard {
   public:
    explicit WaitGuard(BasicEventCount& ec) noexcept
        : ec_(ec), key_(ec.prepare_wait()), armed_(true) {}

    WaitGuard(const WaitGuard&) = delete;
    WaitGuard& operator=(const WaitGuard&) = delete;

    ~WaitGuard() {
      if (armed_) ec_.cancel_wait();
    }

    /// Consumes the registration by sleeping on it. Call at most once.
    WaitResult wait() noexcept {
      armed_ = false;
      return ec_.wait(key_);
    }

    /// Timed variant; also consumes the registration.
    WaitResult wait_until(WaitClock::time_point deadline) noexcept {
      armed_ = false;
      return ec_.wait_until(key_, deadline);
    }

    /// The epoch snapshot taken at registration (tests).
    Key key() const noexcept { return key_; }

   private:
    BasicEventCount& ec_;
    Key key_;
    bool armed_;
  };

  // ---------------------------------------------------- async waiter slots

  /// Lifecycle of an AsyncWaiter slot. Registration arms it; exactly one
  /// of a notify (kClaimed -> kDone) or a cancel (kCancelled) resolves it.
  enum : uint32_t {
    kAwIdle = 0,       ///< never registered (or reset for reuse)
    kAwArmed = 1,      ///< on the list, eligible to be claimed by notify()
    kAwClaimed = 2,    ///< unlinked by notify(); callback is in flight
    kAwDone = 3,       ///< callback finished touching the node
    kAwCancelled = 4,  ///< deregistered by cancel_async() before any claim
  };

  /// One registered asynchronous waiter: instead of parking a thread on
  /// the epoch futex, notify() invokes `on_notify` (which typically
  /// resumes a coroutine handle — see src/async/async_queue.hpp).
  ///
  /// Callback contract (the whole memory-safety story lives here):
  ///  * notify() unlinks the node, stores kAwClaimed, releases the
  ///    registration lock, and only then invokes the callback — callbacks
  ///    never run under the lock, so a callback may re-enter notify().
  ///  * The callback must read everything it needs OUT of the node/frame,
  ///    then store kAwDone (release) as its LAST access to the node, and
  ///    only after that resume/post the handle. Once kAwDone is visible
  ///    the node's owner may free the memory (await_async_done() is the
  ///    rendezvous for an owner whose cancel lost the race to a claim).
  ///  * The EventCount itself never touches the node again after the
  ///    callback is invoked.
  struct AsyncWaiter {
    void (*on_notify)(AsyncWaiter*) = nullptr;
    void* ctx = nullptr;  ///< callback payload (the awaiter object)
    AsyncWaiter* prev = nullptr;
    AsyncWaiter* next = nullptr;
    std::atomic<uint32_t> state{kAwIdle};
  };

  /// Registers an async slot. Counts into the same waiters_ word the
  /// producer's Dekker load reads — that is the whole trick: the producer
  /// cannot tell a coroutine from a parked thread, so its fast path is
  /// byte-identical. The caller must re-check its predicate AFTER this
  /// returns (the awaiter protocol's post-registration poll), mirroring
  /// prepare_wait(); on predicate-true it calls cancel_async().
  void register_async(AsyncWaiter* w) noexcept {
    w->state.store(kAwArmed, std::memory_order_relaxed);
    waiters_.fetch_add(1, std::memory_order_seq_cst);  // the Dekker publish
    lock_.lock();
    w->prev = tail_;
    w->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = w;
    } else {
      head_ = w;
    }
    tail_ = w;
    lock_.unlock();
  }

  /// Deregisters an armed slot. Returns true if the slot was still armed
  /// (it is now kAwCancelled and fully owned by the caller again); false
  /// if a notify already claimed it — the claim's callback is in flight
  /// or finished, and an owner about to release the node's memory must
  /// rendezvous via await_async_done() first.
  bool cancel_async(AsyncWaiter* w) noexcept {
    lock_.lock();
    if (w->state.load(std::memory_order_relaxed) != kAwArmed) {
      lock_.unlock();
      return false;
    }
    unlink(w);
    w->state.store(kAwCancelled, std::memory_order_relaxed);
    lock_.unlock();
    waiters_.fetch_sub(1, std::memory_order_release);
    return true;
  }

  /// Spin until a claimed slot's callback has finished touching the node
  /// (kAwDone). Only needed when cancel_async() returned false and the
  /// node's storage is about to be reused or freed.
  static void await_async_done(AsyncWaiter* w) noexcept {
    while (w->state.load(std::memory_order_acquire) != kAwDone) cpu_pause();
  }

  // ------------------------------------------------------------- notify

  /// Wakes up to `n` registered waiters — parked threads via the epoch
  /// futex, async slots via their callbacks. Callers normally guard with
  /// has_waiters(); notify itself is unconditional (close() wants that).
  ///
  /// notify always serializes through the registration lock — there is
  /// deliberately NO "async list empty" fast skip. A separate emptiness
  /// hint would reintroduce the lost-wakeup window the Dekker closes: a
  /// waiter that has done its waiters_ increment but not yet linked its
  /// node could be missed by the hint and never resumed. With the lock,
  /// either the notifier claims the node (it was linked first), or the
  /// waiter's post-registration re-check runs after the notifier's
  /// unlock and is therefore ordered after the deposit (lock release /
  /// acquire), so it finds the value and cancels. The lock only ever
  /// contends with registration traffic — i.e. only when waiters exist,
  /// which is already the slow path.
  void notify(uint32_t n) noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    AsyncWaiter* claimed = claim_async(n);
    FutexT::wake(epoch_, n);
    run_claimed(claimed);
  }

  void notify_all() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    AsyncWaiter* claimed = claim_async(~uint32_t{0});
    FutexT::wake_all(epoch_);
    run_claimed(claimed);
  }

  // ------------------------------------------------------------ inspection

  /// Approximate registered-waiter count (tests/monitoring); includes
  /// async slots.
  uint32_t waiters() const noexcept {
    return waiters_.load(std::memory_order_relaxed);
  }

  /// Epoch snapshot (tests): notify() is the only epoch writer, so an
  /// unchanged epoch across a window proves no notify ran in it.
  Key epoch_snapshot() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  /// Unlink up to n armed slots; returns them chained via `next` (they are
  /// off the list, so the field is dead until the callback runs). Marks
  /// each kAwClaimed under the lock so a racing cancel_async() sees it.
  AsyncWaiter* claim_async(uint32_t n) noexcept {
    AsyncWaiter* claimed = nullptr;
    AsyncWaiter* claimed_tail = nullptr;
    uint32_t taken = 0;
    lock_.lock();
    while (head_ != nullptr && taken < n) {
      AsyncWaiter* w = head_;
      unlink(w);
      w->state.store(kAwClaimed, std::memory_order_relaxed);
      w->next = nullptr;
      if (claimed_tail != nullptr) {
        claimed_tail->next = w;
      } else {
        claimed = w;
      }
      claimed_tail = w;
      ++taken;
    }
    lock_.unlock();
    if (taken != 0) {
      // Async slots deregister at claim time (a thread deregisters when
      // its futex wait returns); one batched sub keeps the accounting
      // exact so waiters() never over-reports resumed coroutines.
      waiters_.fetch_sub(taken, std::memory_order_release);
    }
    return claimed;
  }

  /// Invoke claimed callbacks outside the lock. `w->next` must be read
  /// before the callback: the callback's kAwDone store hands the node
  /// back to its owner, who may free it immediately.
  static void run_claimed(AsyncWaiter* w) noexcept {
    while (w != nullptr) {
      AsyncWaiter* next = w->next;
      w->on_notify(w);
      w = next;
    }
  }

  void unlink(AsyncWaiter* w) noexcept {
    if (w->prev != nullptr) {
      w->prev->next = w->next;
    } else {
      head_ = w->next;
    }
    if (w->next != nullptr) {
      w->next->prev = w->prev;
    } else {
      tail_ = w->prev;
    }
    w->prev = nullptr;
  }

  struct ListLock {
    void lock() noexcept {
      while (v.exchange(1, std::memory_order_acquire) != 0) cpu_pause();
    }
    void unlock() noexcept { v.store(0, std::memory_order_release); }
    std::atomic<uint32_t> v{0};
  };

  // One line for both hot words: only parking/waking traffic touches them,
  // and a producer's read of waiters_ would drag epoch_'s line along
  // anyway. The alignas keeps unrelated neighbours (e.g. the queue's
  // indices) off. The async-list fields live on the next line: they are
  // only touched by registration and notify, never by the producer check.
  alignas(kCacheLineSize) std::atomic<uint32_t> epoch_{0};  ///< futex word
  std::atomic<uint32_t> waiters_{0};
  // Epoch wrap (2^32 notifies between a snapshot and its wait) is ignored,
  // as in every futex-based event count: the window is a handful of
  // instructions and a wrap merely costs one spurious sleep-and-recheck.
  alignas(kCacheLineSize) ListLock lock_;
  AsyncWaiter* head_ = nullptr;  ///< guarded by lock_
  AsyncWaiter* tail_ = nullptr;  ///< guarded by lock_
};

using EventCount = BasicEventCount<>;

}  // namespace wfq::sync
