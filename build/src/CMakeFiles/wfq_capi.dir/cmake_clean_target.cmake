file(REMOVE_RECURSE
  "libwfq_capi.a"
)
