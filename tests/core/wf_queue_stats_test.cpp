// Tests of the operation-path and wait-freedom instrumentation (OpStats)
// and the approx_size heuristic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "support/wf_test_peek.hpp"

namespace wfq {
namespace {

using Core = WFQueueCore<DefaultWfTraits>;

TEST(WfStats, SequentialOpsProbeExactlyOneCell) {
  WFQueue<uint64_t> q;
  auto h = q.get_handle();
  for (int i = 0; i < 100; ++i) q.enqueue(h, i + 1);
  for (int i = 0; i < 100; ++i) (void)q.dequeue(h);
  OpStats s = q.stats();
  EXPECT_EQ(s.max_enq_probes.load(), 1u);
  EXPECT_EQ(s.max_deq_probes.load(), 1u);
  EXPECT_DOUBLE_EQ(s.avg_enq_probes(), 1.0);
  EXPECT_DOUBLE_EQ(s.avg_deq_probes(), 1.0);
  EXPECT_EQ(s.enq_probes.load(), 100u);
  EXPECT_EQ(s.deq_probes.load(), 100u);
}

TEST(WfStats, SlowPathEnqueueProbesMoreThanOneCell) {
  WfConfig cfg;
  cfg.patience = 0;
  Core q(cfg);
  auto* h = q.register_handle();
  EXPECT_EQ(q.dequeue(h), Core::kEmpty);  // seal cell 0
  q.enqueue(h, 55);                       // fast fail -> slow path
  OpStats s = q.collect_stats();
  EXPECT_GE(s.max_enq_probes.load(), 2u)
      << "slow-path enqueue must have probed the failed and the retry cell";
}

TEST(WfStats, ProbesBoundedIndependentOfRunLength) {
  // Empirical wait-freedom: double the ops, the max probes stay put.
  auto run = [](uint64_t ops) {
    WfConfig cfg;
    cfg.patience = 0;
    WFQueue<uint64_t> q(cfg);
    constexpr unsigned kThreads = 4;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        auto h = q.get_handle();
        for (uint64_t i = 0; i < ops; ++i) {
          q.enqueue(h, (uint64_t(t) << 40) | (i + 1));
          (void)q.dequeue(h);
        }
      });
    }
    for (auto& t : ts) t.join();
    OpStats s = q.stats();
    return std::max(s.max_enq_probes.load(), s.max_deq_probes.load());
  };
  uint64_t short_run = run(2000);
  uint64_t long_run = run(20000);
  // Both bounded by thread-count-dependent constants, not run length. The
  // slack factor absorbs scheduling noise.
  EXPECT_LE(long_run, std::max<uint64_t>(10 * short_run, 64));
}

TEST(WfStats, CountersSurviveSnapshotAndReset) {
  WFQueue<uint64_t> q;
  auto h = q.get_handle();
  q.enqueue(h, 1);
  OpStats a = q.stats();   // copy snapshot
  OpStats b = a;           // copyable
  EXPECT_EQ(b.enqueues(), a.enqueues());
  q.reset_stats();
  EXPECT_EQ(q.stats().enqueues(), 0u);
  EXPECT_EQ(b.enqueues(), 1u) << "snapshot must be independent";
}

TEST(WfStats, AddMergesMaximaAndTotals) {
  OpStats a, b;
  a.enq_probes.store(10);
  a.max_enq_probes.store(4);
  a.enq_fast.store(3);
  b.enq_probes.store(5);
  b.max_enq_probes.store(9);
  b.enq_fast.store(2);
  a.add(b);
  EXPECT_EQ(a.enq_probes.load(), 15u);
  EXPECT_EQ(a.max_enq_probes.load(), 9u);
  EXPECT_EQ(a.enq_fast.load(), 5u);
}

TEST(WfApproxSize, TracksBacklogRoughly) {
  WFQueue<uint64_t> q;
  auto h = q.get_handle();
  EXPECT_EQ(q.approx_size(), 0u);
  for (int i = 0; i < 50; ++i) q.enqueue(h, i + 1);
  EXPECT_EQ(q.approx_size(), 50u);
  for (int i = 0; i < 20; ++i) (void)q.dequeue(h);
  EXPECT_EQ(q.approx_size(), 30u);
  for (int i = 0; i < 30; ++i) (void)q.dequeue(h);
  EXPECT_EQ(q.approx_size(), 0u);
}

TEST(WfApproxSize, ClampsWhenDequeuersOverrun) {
  WFQueue<uint64_t> q;
  auto h = q.get_handle();
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(q.dequeue(h).has_value());
  EXPECT_EQ(q.approx_size(), 0u) << "H > T must clamp to zero";
  q.enqueue(h, 1);
  // Index space wasted by the empty dequeues makes this heuristic, not
  // exact; it must merely never underflow.
  EXPECT_LE(q.approx_size(), 1u);
}

TEST(WfApproxSize, NeverNegativeUnderConcurrency) {
  WFQueue<uint64_t> q;
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    auto h = q.get_handle();
    uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      q.enqueue(h, v++);
      (void)q.dequeue(h);
      (void)q.dequeue(h);  // overrun regularly
    }
  });
  for (int i = 0; i < 100000; ++i) {
    uint64_t s = q.approx_size();
    ASSERT_LT(s, uint64_t{1} << 62) << "underflow leaked through clamp";
  }
  stop.store(true);
  churn.join();
}

}  // namespace
}  // namespace wfq
