// Common scaffolding for segment-backed queues that are NOT the wait-free
// queue: a SegmentList plus the reclamation-policy plumbing every policy
// requires of its host — registered per-thread handles linked into a ring
// (so cleaners can advance idle threads' segment pointers), per-handle
// policy state, and the post-dequeue reclamation poll.
//
// WFQueueCore carries its own copy of this scaffolding because its handles
// additionally hold helping state (peers, requests) that must be
// initialized inside the registration critical section; the simple
// baselines (ObstructionQueue, FAAQueue) share this one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/segment_list.hpp"
#include "memory/segment_reclaim.hpp"

namespace wfq {

template <class Cell, class Traits>
class SegmentQueueBase {
 public:
  using SegList = SegmentList<Cell, Traits>;
  using Segment = typename SegList::Segment;
  using Reclaim = typename Traits::template Reclaim<SegList>;
  static constexpr std::size_t kSegmentSize = SegList::kSegmentSize;

  /// Per-thread state: the segment pointers + ring link + policy block the
  /// ReclaimPolicy concept requires (memory/segment_reclaim.hpp).
  struct Handle {
    std::atomic<Segment*> tail{nullptr};
    std::atomic<Segment*> head{nullptr};
    std::atomic<Handle*> next{nullptr};  ///< ring of all handles
    typename Reclaim::PerHandle rcl;
    Segment* spare = nullptr;  ///< recycles failed list-extension allocations
    Handle* next_free = nullptr;
  };

  explicit SegmentQueueBase(int64_t max_garbage = 64)
      : max_garbage_(max_garbage) {}

  SegmentQueueBase(const SegmentQueueBase&) = delete;
  SegmentQueueBase& operator=(const SegmentQueueBase&) = delete;

  ~SegmentQueueBase() {
    for (auto& h : all_handles_) {
      if (h->spare != nullptr) {
        segs_.free_raw(h->spare);
        h->spare = nullptr;
      }
    }
  }

  Handle* register_handle() {
    std::lock_guard<std::mutex> g(handle_mutex_);
    if (free_handles_ != nullptr) {
      Handle* h = free_handles_;
      free_handles_ = h->next_free;
      h->next_free = nullptr;
      return h;
    }
    auto owned = std::make_unique<Handle>();
    Handle* h = owned.get();
    rcl_.attach(h);
    // Exclude cleaners while capturing the current first segment, exactly
    // as WFQueueCore::register_handle does.
    int64_t oid = rcl_.lock_frontier();
    Segment* front = segs_.first(std::memory_order_relaxed);
    h->tail.store(front, std::memory_order_relaxed);
    h->head.store(front, std::memory_order_relaxed);
    Handle* anchor = ring_.load(std::memory_order_relaxed);
    if (anchor == nullptr) {
      h->next.store(h, std::memory_order_relaxed);
      ring_.store(h, std::memory_order_release);
    } else {
      h->next.store(anchor->next.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      anchor->next.store(h, std::memory_order_release);
    }
    rcl_.unlock_frontier(oid);
    all_handles_.push_back(std::move(owned));
    return h;
  }

  void release_handle(Handle* h) {
    std::lock_guard<std::mutex> g(handle_mutex_);
    h->next_free = free_handles_;
    free_handles_ = h;
  }

  /// RAII registration for one thread. Must not outlive the queue: the
  /// destructor returns the handle to the queue's freelist.
  class HandleGuard {
   public:
    explicit HandleGuard(SegmentQueueBase& q)
        : q_(&q), h_(q.register_handle()) {}
    ~HandleGuard() {
      if (h_ != nullptr) q_->release_handle(h_);
    }
    HandleGuard(HandleGuard&& o) noexcept : q_(o.q_), h_(o.h_) {
      o.h_ = nullptr;
    }
    HandleGuard(const HandleGuard&) = delete;
    HandleGuard& operator=(const HandleGuard&) = delete;
    Handle* get() const noexcept { return h_; }
    Handle* operator->() const noexcept { return h_; }

   private:
    SegmentQueueBase* q_;
    Handle* h_;
  };

  // ---- introspection (shared with WFQueueCore's accessors) -------------

  std::size_t live_segments() const { return segs_.live_segments(); }
  int64_t segments_outstanding() const { return segs_.outstanding(); }
  std::size_t peak_live_segments() const {
    return segs_.peak_live_segments();
  }
  Reclaim& reclaimer() noexcept { return rcl_; }
  const Reclaim& reclaimer() const noexcept { return rcl_; }

 protected:
  /// Resolve cell `idx` through the segment pointer `sp` (the handle's own
  /// head or tail), advancing it to the reached segment.
  Cell* cell_at(Handle* h, std::atomic<Segment*>& sp, uint64_t idx,
                const char* who) {
    Segment* s = sp.load(std::memory_order_acquire);
    Cell* c = segs_.find_cell(s, idx, h->spare, who);
    sp.store(s, std::memory_order_release);
    return c;
  }

  /// Batch variant of cell_at: resolve `count` consecutive cells starting
  /// at `first` with one segment walk (SegmentList::find_cell_range),
  /// advancing `sp` to the last cell's segment.
  void cells_at(Handle* h, std::atomic<Segment*>& sp, uint64_t first,
                std::size_t count, Cell** out, const char* who) {
    Segment* s = sp.load(std::memory_order_acquire);
    segs_.find_cell_range(s, first, count, out, h->spare, who);
    sp.store(s, std::memory_order_release);
  }

  /// Post-dequeue reclamation poll. `head_index`/`tail_index` are the
  /// queue's dequeue/enqueue indices H and T: the frontier must stay at or
  /// below segment(T / N) (tail-cap erratum; see
  /// WFQueueCore::poll_reclaim), and segment(H / N) feeds the policy's
  /// integer garbage-trigger estimate.
  void poll_reclaim(Handle* h, const std::atomic<uint64_t>& head_index,
                    const std::atomic<uint64_t>& tail_index) {
    const int64_t head_cap =
        int64_t(head_index.load(std::memory_order_seq_cst) / kSegmentSize);
    const int64_t tail_cap =
        int64_t(tail_index.load(std::memory_order_seq_cst) / kSegmentSize);
    (void)rcl_.poll(segs_, h, head_cap, tail_cap, max_garbage_);
  }

  SegList segs_;
  Reclaim rcl_;
  int64_t max_garbage_;

 private:
  std::atomic<Handle*> ring_{nullptr};
  mutable std::mutex handle_mutex_;
  Handle* free_handles_ = nullptr;
  std::vector<std::unique_ptr<Handle>> all_handles_;
};

}  // namespace wfq
