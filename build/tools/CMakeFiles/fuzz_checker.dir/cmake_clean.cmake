file(REMOVE_RECURSE
  "CMakeFiles/fuzz_checker.dir/fuzz_checker.cpp.o"
  "CMakeFiles/fuzz_checker.dir/fuzz_checker.cpp.o.d"
  "fuzz_checker"
  "fuzz_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
