// Arena create/attach contract: header validation through a read-only
// descriptor, the -5-without-touching guarantee (a rejected attach leaves
// the file byte-for-byte identical), and bump-allocator exhaustion.
#include "ipc/shm_arena.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using wfq::ipc::ArenaHeader;
using wfq::ipc::ArenaStatus;
using wfq::ipc::kNullOffset;
using wfq::ipc::ShmArena;
using wfq::ipc::ShmOffset;

std::string temp_path(const char* tag) {
  return "/tmp/wfq_arena_test_" + std::to_string(::getpid()) + "_" + tag;
}

std::vector<char> slurp(const std::string& path) {
  std::vector<char> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void patch_file(const std::string& path, off_t off, const void* data,
                std::size_t len) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, data, len, off), static_cast<ssize_t>(len));
  ::close(fd);
}

struct ArenaFile {
  std::string path;
  explicit ArenaFile(const char* tag) : path(temp_path(tag)) {}
  ~ArenaFile() { ShmArena::destroy(path.c_str()); }
};

TEST(ShmArena, CreateAttachRoundTrip) {
  ArenaFile f("roundtrip");
  ShmArena owner;
  ASSERT_EQ(ShmArena::create(f.path.c_str(), 1 << 16, &owner),
            ArenaStatus::kOk);
  ShmOffset obj = owner.alloc(128);
  ASSERT_NE(obj, kNullOffset);
  *owner.at<std::uint64_t>(obj) = 0xfeedfacecafebeefULL;
  owner.set_root(obj);
  owner.publish_ready();

  ShmArena peer;
  ASSERT_EQ(ShmArena::attach(f.path.c_str(), &peer), ArenaStatus::kOk);
  EXPECT_EQ(peer.bytes(), owner.bytes());
  EXPECT_EQ(peer.root(), obj);
  EXPECT_EQ(*peer.at<std::uint64_t>(peer.root()), 0xfeedfacecafebeefULL);
  // Distinct mappings of the same physical pages: a write through one view
  // is visible through the other.
  *owner.at<std::uint64_t>(obj) = 42;
  EXPECT_EQ(*peer.at<std::uint64_t>(peer.root()), 42u);
}

TEST(ShmArena, CreateRejectsTooSmall) {
  ArenaFile f("toosmall");
  ShmArena a;
  EXPECT_EQ(ShmArena::create(f.path.c_str(), ShmArena::kMinBytes - 1, &a),
            ArenaStatus::kTooSmall);
}

TEST(ShmArena, AttachRejectsMissingFile) {
  ShmArena a;
  EXPECT_EQ(ShmArena::attach("/tmp/wfq_arena_test_definitely_absent", &a),
            ArenaStatus::kIoError);
}

TEST(ShmArena, AttachRejectsShortFile) {
  ArenaFile f("short");
  std::FILE* out = std::fopen(f.path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  std::fputs("tiny", out);
  std::fclose(out);
  ShmArena a;
  EXPECT_EQ(ShmArena::attach(f.path.c_str(), &a), ArenaStatus::kBadMagic);
}

TEST(ShmArena, AttachRejectsForeignMagicWithoutTouchingFile) {
  ArenaFile f("magic");
  {
    ShmArena owner;
    ASSERT_EQ(ShmArena::create(f.path.c_str(), 1 << 14, &owner),
              ArenaStatus::kOk);
    owner.publish_ready();
  }
  const std::uint64_t junk = 0x4141414141414141ULL;
  patch_file(f.path, offsetof(ArenaHeader, magic), &junk, sizeof(junk));

  std::vector<char> before = slurp(f.path);
  ShmArena a;
  EXPECT_EQ(ShmArena::attach(f.path.c_str(), &a), ArenaStatus::kBadMagic);
  EXPECT_EQ(slurp(f.path), before) << "rejected attach modified the file";
}

TEST(ShmArena, AttachRejectsVersionMismatchWithoutTouchingFile) {
  ArenaFile f("version");
  {
    ShmArena owner;
    ASSERT_EQ(ShmArena::create(f.path.c_str(), 1 << 14, &owner),
              ArenaStatus::kOk);
    owner.publish_ready();
  }
  const std::uint32_t future = WFQ_SHM_LAYOUT_VERSION + 1;
  patch_file(f.path, offsetof(ArenaHeader, layout_version), &future,
             sizeof(future));

  std::vector<char> before = slurp(f.path);
  ShmArena a;
  EXPECT_EQ(ShmArena::attach(f.path.c_str(), &a),
            ArenaStatus::kVersionMismatch);
  EXPECT_EQ(slurp(f.path), before) << "rejected attach modified the file";
}

TEST(ShmArena, AttachRejectsTruncatedArena) {
  ArenaFile f("truncated");
  {
    ShmArena owner;
    ASSERT_EQ(ShmArena::create(f.path.c_str(), 1 << 14, &owner),
              ArenaStatus::kOk);
    owner.publish_ready();
  }
  ASSERT_EQ(::truncate(f.path.c_str(), (1 << 14) - 512), 0);
  ShmArena a;
  EXPECT_EQ(ShmArena::attach(f.path.c_str(), &a), ArenaStatus::kBadGeometry);
}

TEST(ShmArena, AttachRejectsUnpublishedArena) {
  ArenaFile f("notready");
  ShmArena owner;
  ASSERT_EQ(ShmArena::create(f.path.c_str(), 1 << 14, &owner),
            ArenaStatus::kOk);
  // Creator "died" before publish_ready(): attachers must refuse rather
  // than adopt half-built structures.
  ShmArena a;
  EXPECT_EQ(ShmArena::attach(f.path.c_str(), &a), ArenaStatus::kNotReady);
  owner.publish_ready();
  EXPECT_EQ(ShmArena::attach(f.path.c_str(), &a), ArenaStatus::kOk);
}

TEST(ShmArena, AllocExhaustsToNullOffset) {
  ArenaFile f("exhaust");
  ShmArena a;
  ASSERT_EQ(ShmArena::create(f.path.c_str(), ShmArena::kMinBytes, &a),
            ArenaStatus::kOk);
  // 4096 total minus the header: a handful of 1KiB blocks, then kNullOffset
  // forever (exhaustion is terminal, mirroring the queue's kNoMem seam).
  int got = 0;
  while (a.alloc(1024) != kNullOffset) {
    ++got;
    ASSERT_LT(got, 8);
  }
  EXPECT_GT(got, 0);
  EXPECT_EQ(a.alloc(1024), kNullOffset);
  EXPECT_EQ(a.alloc(1), kNullOffset) << "exhaustion must be terminal";
}

TEST(ShmArena, AllocationsAreCacheLineAligned) {
  ArenaFile f("align");
  ShmArena a;
  ASSERT_EQ(ShmArena::create(f.path.c_str(), 1 << 14, &a), ArenaStatus::kOk);
  for (int i = 0; i < 8; ++i) {
    ShmOffset off = a.alloc(24 + i);
    ASSERT_NE(off, kNullOffset);
    EXPECT_EQ(off % 64, 0u);
  }
}

}  // namespace
