// ShardedQueue<Q> semantics: lane affinity, the full-sweep steal, the
// relaxed-FIFO contract's per-producer half, composition over every backend
// family (unbounded WF, bounded rings), stats merging, and the blocking
// close()/drain() lifecycle through BlockingShardedQueue.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "scale/sharded_queue.hpp"
#include "support/queue_test_util.hpp"
#include "sync/blocking_queue.hpp"

namespace wfq {
namespace {

using SQ = ShardedQueue<WFQueue<uint64_t>>;

SQ make_sq(std::size_t shards) {
  WfConfig cfg;
  cfg.patience = 10;
  return SQ(ShardConfig{shards}, cfg);
}

TEST(ShardedQueue, ShardCountResolution) {
  SQ q1 = make_sq(1);
  EXPECT_EQ(q1.shards(), 1u);
  SQ q8 = make_sq(8);
  EXPECT_EQ(q8.shards(), 8u);
  // shards = 0 resolves to a nonzero auto value.
  SQ qa = make_sq(0);
  EXPECT_GE(qa.shards(), 1u);
  EXPECT_LE(qa.shards(), 4u);
}

TEST(ShardedQueue, HomesAreDealtRoundRobin) {
  SQ q = make_sq(4);
  std::set<std::size_t> homes;
  std::vector<SQ::Handle> hs;
  for (int i = 0; i < 4; ++i) hs.push_back(q.get_handle());
  for (auto& h : hs) homes.insert(h.home());
  // Four consecutive handles on a 4-lane queue cover all four lanes.
  EXPECT_EQ(homes.size(), 4u);
}

TEST(ShardedQueue, SingleHandleIsStrictFifo) {
  // One handle = one home lane: even with 4 lanes the single-threaded
  // history is strict FIFO (all traffic stays on the home lane).
  SQ q = make_sq(4);
  test::run_sequential_fifo(q, 2000);
}

TEST(ShardedQueue, EnqueueStaysOnHomeLane) {
  SQ q = make_sq(4);
  auto h = q.get_handle();
  const std::size_t home = h.home();
  for (uint64_t i = 1; i <= 100; ++i) q.enqueue(h, i);
  // Only the home lane holds data; every other lane is empty.
  for (std::size_t l = 0; l < q.shards(); ++l) {
    auto lh = q.lane(l).get_handle();
    auto v = q.lane(l).dequeue(lh);
    if (l == home) {
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, 1u);
    } else {
      EXPECT_FALSE(v.has_value());
    }
  }
}

TEST(ShardedQueue, StealDrainsForeignLanes) {
  SQ q = make_sq(4);
  auto producer = q.get_handle();
  auto consumer = q.get_handle();  // round-robin: a different home
  ASSERT_NE(producer.home(), consumer.home());
  for (uint64_t i = 1; i <= 50; ++i) q.enqueue(producer, i);
  // The consumer's home lane is empty, so every value arrives by steal,
  // and in FIFO order (single foreign lane).
  for (uint64_t i = 1; i <= 50; ++i) {
    auto v = q.dequeue(consumer);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue(consumer).has_value());
  OpStats s = q.stats();
  EXPECT_EQ(s.steals.load(), 50u);
  EXPECT_GE(s.steal_attempts.load(), 50u);
}

TEST(ShardedQueue, DequeueTracedReportsLane) {
  SQ q = make_sq(4);
  auto producer = q.get_handle();
  auto consumer = q.get_handle();
  q.enqueue(producer, 7);
  auto traced = q.dequeue_traced(consumer);
  ASSERT_TRUE(traced.has_value());
  EXPECT_EQ(traced->first, 7u);
  EXPECT_EQ(traced->second, producer.home());
  EXPECT_FALSE(q.dequeue_traced(consumer).has_value());
}

TEST(ShardedQueue, EmptyRequiresFullSweep) {
  // After draining, nullopt must mean "every lane observed empty":
  // plant a value on the lane farthest from the steal start and make sure
  // dequeue still finds it (a partial sweep would miss it sometimes).
  SQ q = make_sq(8);
  auto consumer = q.get_handle();
  for (int round = 0; round < 64; ++round) {
    const std::size_t target = std::size_t(round) % q.shards();
    auto lh = q.lane(target).get_handle();
    q.lane(target).enqueue(lh, uint64_t(round) + 1);
    auto v = q.dequeue(consumer);
    ASSERT_TRUE(v.has_value()) << "missed lane " << target;
    EXPECT_EQ(*v, uint64_t(round) + 1);
  }
  EXPECT_FALSE(q.dequeue(consumer).has_value());
}

TEST(ShardedQueue, MpmcConservationAndPerProducerFifo) {
  // The uniform MPMC property driver asserts exactly the relaxed contract:
  // no loss, no duplication, and each producer's values observed in order
  // by every consumer (per-producer FIFO = the lane-affinity guarantee).
  SQ q = make_sq(4);
  test::run_mpmc_property(q, 4, 4, 2500);
}

TEST(ShardedQueue, PairsConservationUnderStealing) {
  SQ q = make_sq(2);
  test::run_pairs_conservation(q, 6, 2000);
}

TEST(ShardedQueue, BulkOpsSpanLanes) {
  SQ q = make_sq(4);
  auto producer = q.get_handle();
  auto consumer = q.get_handle();
  uint64_t vals[16];
  for (uint64_t i = 0; i < 16; ++i) vals[i] = i + 1;
  EXPECT_EQ(q.enqueue_bulk(producer, vals, 16), 16u);
  uint64_t out[16] = {};
  // The consumer's own lane is empty; the bulk steal sweep must fetch the
  // full batch from the producer's lane.
  EXPECT_EQ(q.dequeue_bulk(consumer, out, 16), 16u);
  for (uint64_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(q.dequeue_bulk(consumer, out, 4), 0u);
}

TEST(ShardedQueue, BoundedBackendContract) {
  // Sharded over a bounded ring: capacity sums lanes; kFull is per-lane
  // backpressure on the handle's home (documented: spilling would break
  // per-producer FIFO).
  ShardedQueue<ScqQueue<uint64_t>> q(ShardConfig{2}, std::size_t(8));
  EXPECT_EQ(q.capacity(), 16u);
  auto h = q.get_handle();
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(q.try_enqueue(h, i + 1), EnqueueResult::kOk);
  }
  EXPECT_EQ(q.try_enqueue(h, 99), EnqueueResult::kFull);
  auto v = q.dequeue(h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
  EXPECT_EQ(q.try_enqueue(h, 100), EnqueueResult::kOk);
}

TEST(ShardedQueue, ComposesOverWcq) {
  ShardedQueue<WcqQueue<uint64_t>> q(ShardConfig{2}, std::size_t(64));
  test::run_mpmc_property(q, 2, 2, 500);
}

TEST(ShardedQueue, StatsMergeLanesAndSurviveHandleRelease) {
  SQ q = make_sq(2);
  {
    auto producer = q.get_handle();
    auto consumer = q.get_handle();
    for (uint64_t i = 1; i <= 20; ++i) q.enqueue(producer, i);
    for (uint64_t i = 1; i <= 20; ++i) {
      ASSERT_TRUE(q.dequeue(consumer).has_value());
    }
  }  // both handles released: counters must persist in the registry
  OpStats s = q.stats();
  EXPECT_EQ(s.enqueues(), 20u);
  // Every dequeue probed the consumer's empty home lane first (counted by
  // the inner queue as a fast-path op returning EMPTY) and then stole.
  EXPECT_GE(s.dequeues(), 20u);
  EXPECT_EQ(s.steals.load(), 20u);
}

TEST(ShardedQueue, LaneLoadsReportPerLaneTraffic) {
  SQ q = make_sq(4);
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 30; ++i) q.enqueue(h, i);
  std::vector<uint64_t> loads = q.lane_loads();
  ASSERT_EQ(loads.size(), 4u);
  uint64_t total = 0, busiest = 0;
  for (uint64_t l : loads) {
    total += l;
    if (l > busiest) busiest = l;
  }
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(busiest, 30u);  // single handle: all traffic on one lane
}

TEST(ShardedQueue, NumaModesConstructAndRun) {
  // On this host the topology may be a single node; both modes must still
  // construct, place lanes, and pass a conservation run (the policy is
  // performance-only, never correctness).
  for (NumaMode mode : {NumaMode::kInterleave, NumaMode::kLocal}) {
    WfConfig cfg;
    cfg.patience = 10;
    SQ q(ShardConfig{4, mode}, cfg);
    EXPECT_EQ(q.numa_mode(), mode);
    test::run_mpmc_property(q, 2, 2, 500);
  }
}

// ---- BlockingShardedQueue: close()/drain() over lanes --------------------

TEST(BlockingSharded, CloseDrainsEveryLane) {
  sync::BlockingShardedQueue<uint64_t> q(ShardConfig{4}, WfConfig{});
  constexpr unsigned kProducers = 4;
  constexpr uint64_t kPerProducer = 500;
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto h = q.get_handle();
      for (uint64_t i = 1; i <= kPerProducer; ++i) {
        ASSERT_EQ(q.push_status(h, (uint64_t(p + 1) << 32) | i),
                  sync::PushStatus::kOk);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  // Push after close fails fast.
  {
    auto h = q.get_handle();
    EXPECT_EQ(q.push_status(h, 42), sync::PushStatus::kClosed);
  }
  // Drain must surface exactly every value across all lanes, then report
  // closed-and-empty (the full-sweep emptiness witness).
  std::set<uint64_t> seen;
  auto h = q.get_handle();
  for (;;) {
    uint64_t v = 0;
    sync::PopStatus st = q.pop_wait(h, v);
    if (st == sync::PopStatus::kClosed) break;
    ASSERT_EQ(st, sync::PopStatus::kOk);
    EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
  }
  EXPECT_EQ(seen.size(), std::size_t(kProducers) * kPerProducer);
}

TEST(BlockingSharded, ParkedConsumerWokenByForeignLanePush) {
  // A consumer parks on an empty queue; a producer whose home is a
  // DIFFERENT lane pushes one value. The blocking layer's single
  // EventCount spans lanes, so the wake must arrive and the steal sweep
  // must find the value.
  sync::BlockingShardedQueue<uint64_t> q(ShardConfig{4}, WfConfig{});
  auto consumer_handle = q.get_handle();
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    uint64_t v = 0;
    ASSERT_EQ(q.pop_wait(consumer_handle, v), sync::PopStatus::kOk);
    EXPECT_EQ(v, 1234u);
    got.store(true);
  });
  auto producer_handle = q.get_handle();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(q.push_status(producer_handle, 1234), sync::PushStatus::kOk);
  consumer.join();
  EXPECT_TRUE(got.load());
}

}  // namespace
}  // namespace wfq
