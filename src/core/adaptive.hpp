// Observability-driven adaptive tuning for the wait-free queue's fast-path
// knobs (docs/ALGORITHM.md §14).
//
// The paper fixes PATIENCE (extra fast-path attempts before an operation
// publishes a helping request) at construction time: WF-10 for
// throughput, WF-0 to stress the slow path. But the right setting depends on
// the observed contention mix — wCQ (PPoPP'22) shows the fast/slow fork is
// the dominant cost lever in this design family, and the slow-path *ratio*
// is exactly what the OpStats counters already measure. The controllers in
// this header close that loop per handle:
//
//   * PatienceController — EWMA of the handle's own slow-path ratio over
//     fixed-size op epochs, with a hysteresis band: ratio above the raise
//     threshold doubles patience (more fast-path attempts, fewer request
//     publications), below the drop threshold halves it (stop paying wasted
//     CAS attempts the contention level no longer demands). Clamped to
//     [kMinPatience, kMaxPatience] = [1, 64].
//   * BulkKController — AIMD on dequeue_bulk reservation size: a reservation
//     that came back full grows k (amortize the shared FAA further), a short
//     return (the batch's emptiness witness) halves it so a near-empty queue
//     stops burning head indices on tickets that will mostly be wasted.
//
// Progress-safety: adaptation only moves *when* the helping slow path is
// entered (between 2 and 65 fast-path attempts), never *whether* it runs —
// every operation still falls through to enq_slow/deq_slow after finitely
// many attempts, so the wait-freedom bound (Theorem 4.6) is untouched; only
// the constant changes. See docs/ALGORITHM.md §14 for the full argument.
//
// Threading contract: a controller is owner-local Handle state. note_op /
// note_batch run on the handle owner's fast path and are plain loads/stores
// and integer arithmetic — ZERO atomics, no fences, nothing shared. The
// stats counters fed by the controller's decisions (patience_raises,
// patience_drops, bulk_k_current) are bumped by the *caller* and only at
// epoch boundaries, so the per-op cost of adaptive mode is one branch and
// two owner-local increments.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wfq::adaptive {

/// What a controller decided at an epoch boundary (kHold on every op that
/// is not an epoch boundary, or when the EWMA sits inside the hysteresis
/// band). The caller translates kRaise/kDrop into stats/trace emissions.
enum class Decision : uint8_t { kHold = 0, kRaise = 1, kDrop = 2 };

/// Tuning knobs for PatienceController. The defaults are deliberately
/// conservative: a 256-op epoch is long enough that one helping burst does
/// not whipsaw the knob, and the 10x gap between the raise and drop
/// thresholds is the hysteresis band that keeps a borderline workload from
/// oscillating between two patience values every epoch.
struct PatienceConfig {
  unsigned initial = 10;        ///< starting patience (the WfConfig knob)
  unsigned epoch_ops = 256;     ///< ops per adaptation window (power of two)
  double alpha = 0.5;           ///< EWMA blend weight of the newest window
  double raise_above = 0.02;    ///< EWMA slow ratio > this => raise
  double drop_below = 0.002;    ///< EWMA slow ratio < this => drop
};

/// Per-handle PATIENCE controller (see file header). Deterministic: the
/// same sequence of note_op(slow) calls always yields the same patience
/// trajectory, which is what tests/core/adaptive_test.cpp scripts.
class PatienceController {
 public:
  static constexpr unsigned kMinPatience = 1;
  static constexpr unsigned kMaxPatience = 64;

  PatienceController() { configure({}); }

  /// (Re)initialize from a config. Called at handle registration so a
  /// recycled handle starts from the queue's configured baseline rather
  /// than wherever its previous owner's workload drove it.
  void configure(const PatienceConfig& cfg) {
    cfg_ = cfg;
    if (cfg_.epoch_ops == 0) cfg_.epoch_ops = 1;
    patience_ = clamp(cfg.initial);
    ewma_ = 0.0;
    ops_ = 0;
    slow_ = 0;
  }

  /// Current patience for the next operation's fast-path loop.
  unsigned patience() const noexcept { return patience_; }

  /// Smoothed slow-path ratio (introspection/tests).
  double ewma() const noexcept { return ewma_; }

  /// Record one completed operation (slow = it left the fast path). Plain
  /// owner-local arithmetic; returns a non-kHold decision only on the op
  /// that closes an epoch AND moves the knob.
  Decision note_op(bool slow) noexcept {
    ++ops_;
    slow_ += slow ? 1 : 0;
    if (ops_ < cfg_.epoch_ops) return Decision::kHold;
    const double ratio = double(slow_) / double(ops_);
    ewma_ = (1.0 - cfg_.alpha) * ewma_ + cfg_.alpha * ratio;
    ops_ = 0;
    slow_ = 0;
    if (ewma_ > cfg_.raise_above && patience_ < kMaxPatience) {
      patience_ = clamp(patience_ * 2);
      return Decision::kRaise;
    }
    if (ewma_ < cfg_.drop_below && patience_ > kMinPatience) {
      patience_ = clamp(patience_ / 2);
      return Decision::kDrop;
    }
    return Decision::kHold;
  }

 private:
  static unsigned clamp(unsigned p) noexcept {
    if (p < kMinPatience) return kMinPatience;
    if (p > kMaxPatience) return kMaxPatience;
    return p;
  }

  PatienceConfig cfg_{};
  unsigned patience_ = 10;
  double ewma_ = 0.0;
  unsigned ops_ = 0;
  unsigned slow_ = 0;
};

/// Per-handle dequeue_bulk reservation-size controller: AIMD on the
/// short-return signal. A full batch means the queue had at least k items
/// reachable — grow additively (amortize the shared FAA over more cells).
/// A short return is the batch's emptiness witness — halve, so the next
/// call risks fewer head indices on a queue that just looked empty.
/// Owner-local, zero atomics (same contract as PatienceController).
class BulkKController {
 public:
  static constexpr std::size_t kMinK = 4;
  static constexpr std::size_t kMaxK = 256;
  static constexpr std::size_t kGrowStep = 16;

  /// Reservation cap for the next dequeue_bulk FAA.
  std::size_t k() const noexcept { return k_; }

  /// Record one reservation's outcome. `reserved` is what the FAA claimed,
  /// `claimed` how many values came back.
  void note_batch(std::size_t reserved, std::size_t claimed) noexcept {
    if (claimed >= reserved) {
      k_ = k_ + kGrowStep > kMaxK ? kMaxK : k_ + kGrowStep;
    } else {
      k_ = k_ / 2 < kMinK ? kMinK : k_ / 2;
    }
  }

  void reset() noexcept { k_ = kInitialK; }

 private:
  static constexpr std::size_t kInitialK = 32;
  std::size_t k_ = kInitialK;
};

}  // namespace wfq::adaptive
