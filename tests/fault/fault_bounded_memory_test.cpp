// Bounded memory under a permanently stalled victim, for every reclamation
// policy. A thread parked inside an operation keeps its protection (hzdp /
// hazard pointer / epoch) published, which pins the reclamation frontier:
// live segments grow without bound while the rest of the system keeps
// making wait-free progress. The robustness claim under test is that
// adopting the stalled thread's handle clears its protection and pending
// work, after which reclamation catches up and memory returns to the
// max_garbage-bounded steady state — the paper's "every thread keeps
// stepping" liveness assumption replaced by detection + adoption (see
// docs/ALGORITHM.md §11).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/wf_queue_core.hpp"
#include "fault/fault_test_util.hpp"
#include "memory/segment_reclaim.hpp"

namespace wfq {
namespace {

using fault_test::Inj;

struct PaperTraits : fault_test::FaultSmallTraits {};
struct HpTraits : fault_test::FaultSmallTraits {
  template <class SL>
  using Reclaim = HpReclaim<SL>;
};
struct EpochTraits : fault_test::FaultSmallTraits {
  template <class SL>
  using Reclaim = EpochReclaim<SL>;
};

template <class Traits>
class FaultBoundedMemory : public ::testing::Test {};
using Policies = ::testing::Types<PaperTraits, HpTraits, EpochTraits>;
TYPED_TEST_SUITE(FaultBoundedMemory, Policies);

TYPED_TEST(FaultBoundedMemory, StalledVictimPinsUntilAdopted) {
  using Core = WFQueueCore<TypeParam>;
  constexpr std::size_t kSeg = TypeParam::kSegmentSize;

  fault_test::ScriptReset script;
  // Aggressive reclamation (max_garbage 4) so the steady-state footprint is
  // small and the pinned growth is unmistakable.
  Core q(WfConfig{/*patience=*/10, /*max_garbage=*/4, /*reserve=*/0});

  // The victim parks forever at deq_begin — after begin_op, so its
  // protection is published exactly as a live dequeuer's would be.
  typename Core::Handle* vh = q.register_handle();
  std::thread victim([&] {
    Inj::set_victim(true);
    EXPECT_TRUE(
        Inj::arm("deq_begin", fault::Action::kStall, 1, Inj::kForever));
    try {
      (void)q.dequeue(vh);
      ADD_FAILURE() << "permanently stalled dequeue returned";
    } catch (const fault::InjectedCrash& c) {
      EXPECT_STREQ(c.point, "deq_begin");
    }
    Inj::set_victim(false);
  });
  while (Inj::stalls() == 0) std::this_thread::yield();

  // Steady traffic from a healthy thread: enqueue/dequeue pairs, `rounds`
  // segments' worth. The queue's *content* stays tiny throughout; only the
  // pinned garbage grows.
  auto pump = [&](std::size_t rounds) {
    typename Core::HandleGuard h(q);
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < kSeg; ++i) {
        ASSERT_TRUE(q.enqueue(h.get(), (r + 2) * 100000 + i));
        ASSERT_NE(q.dequeue(h.get()), Core::kEmpty);
      }
    }
  };
  pump(32);
  const std::size_t pinned = q.live_segments();
  // With the frontier pinned at the victim's position, nearly all 32
  // traversed segments must still be live (far above the max_garbage bound).
  EXPECT_GE(pinned, 16u);

  // Adoption: the victim is declared dead, its handle's pending work is
  // completed and its protection cleared. Reclamation now catches up.
  q.adopt_handle(vh);
  pump(32);
  EXPECT_LE(q.live_segments(), 12u);
  EXPECT_GE(q.peak_live_segments(), pinned);

  // Unpark the corpse: a kForever stall wakes only as an InjectedCrash, so
  // the victim unwinds without ever resuming the adopted operation.
  Inj::release_stalls();
  victim.join();
  q.release_handle(vh);  // releasing an adopted handle only freelists it

  OpStats s = q.collect_stats();
  EXPECT_EQ(s.adopted_handles.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(s.injected_stalls.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(s.injected_crashes.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(s.orphan_drops.load(std::memory_order_relaxed), 0u);

  // The recycled record and the queue both stay fully serviceable.
  typename Core::HandleGuard h(q);
  ASSERT_TRUE(q.enqueue(h.get(), 42));
  EXPECT_EQ(q.dequeue(h.get()), 42u);
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);
}

}  // namespace
}  // namespace wfq
