# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_platform "/root/repo/build/bench/bench_platform")
set_tests_properties(smoke_bench_platform PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_pairs "/root/repo/build/bench/bench_pairs")
set_tests_properties(smoke_bench_pairs PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_50enq "/root/repo/build/bench/bench_50enq")
set_tests_properties(smoke_bench_50enq PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_llsc "/root/repo/build/bench/bench_llsc")
set_tests_properties(smoke_bench_llsc PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_breakdown "/root/repo/build/bench/bench_breakdown")
set_tests_properties(smoke_bench_breakdown PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_patience "/root/repo/build/bench/bench_patience")
set_tests_properties(smoke_bench_patience PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_memorder "/root/repo/build/bench/bench_memorder")
set_tests_properties(smoke_bench_memorder PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_segment "/root/repo/build/bench/bench_segment")
set_tests_properties(smoke_bench_segment PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_reclaim "/root/repo/build/bench/bench_reclaim")
set_tests_properties(smoke_bench_reclaim PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_waitfreedom "/root/repo/build/bench/bench_waitfreedom")
set_tests_properties(smoke_bench_waitfreedom PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_reclaim_scheme "/root/repo/build/bench/bench_reclaim_scheme")
set_tests_properties(smoke_bench_reclaim_scheme PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_latency "/root/repo/build/bench/bench_latency")
set_tests_properties(smoke_bench_latency PROPERTIES  ENVIRONMENT "WFQ_THREADS=1,2;WFQ_OPS=2000;WFQ_INVOCATIONS=1;WFQ_ITERATIONS=2;WFQ_WINDOW=2;WFQ_NO_DELAY=1" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ops "/root/repo/build/bench/bench_ops" "--benchmark_min_time=0.01" "--benchmark_filter=BM_FaaPrimitive|BM_PairSingleThread.*WfQ")
set_tests_properties(smoke_bench_ops PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
