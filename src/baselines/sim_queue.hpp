// P-Sim: Fatourou & Kallimanis' practical wait-free universal construction
// (SPAA'11, "A Highly-Efficient Wait-free Universal Construction"), §2 of
// the host paper: "P-Sim uses FAA in addition to CAS to achieve
// wait-freedom. The wait-free queue constructed using P-Sim outperformed
// all prior designs for wait-free queues and MS-Queue."
//
// The construction: a thread publishes its request, then flips its bit in a
// shared Toggles word with a single FAA — the no-carry trick: the thread is
// the only writer of its bit, so it alternately adds +2^i and -2^i and the
// bit flips without carries (this is P-Sim's FAA usage). A combiner then
// (1) reads the current state record, (2) computes which announced requests
// are not yet absorbed (Toggles XOR record.applied), (3) applies them ALL
// to a private copy, recording per-thread responses, and (4) installs the
// copy with one CAS. Two combiner rounds suffice for wait-freedom: any
// record installed on top of one created after my toggle absorbs me.
//
// Memory: state records and announcement records are immutable once
// published and reclaimed with hazard pointers (the original recycles them
// through per-thread pools; HP keeps the memory story uniform with the rest
// of this library). Announcements are pointer-swapped rather than written
// in place so a lagging combiner can never observe a torn request — its
// doomed CAS will fail anyway, but it must not crash reading the slot.
//
// The sequential state is an std::deque-backed queue; the O(state) copy per
// install is the universal construction's price and exactly why §2 calls
// universal constructions "hardly practical in general". T must be
// copyable (responses are copied out of shared immutable records).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/align.hpp"
#include "memory/hazard_pointers.hpp"

namespace wfq::baselines {

template <class T>
class SimQueue {
  static constexpr unsigned kMaxThreads = 64;  // Toggles is one 64-bit word

  struct Request {
    bool enqueue = false;
    T arg{};
    uint64_t serial = 0;  ///< per-thread, distinguishes consecutive requests
  };

  struct Response {
    bool has_value = false;
    T value{};
  };

  /// One immutable state snapshot.
  struct StateRec {
    std::deque<T> items;
    uint64_t applied = 0;  ///< toggle vector this record has absorbed
    std::vector<Response> responses;       ///< response per thread slot
    std::vector<uint64_t> applied_serial;  ///< last absorbed serial per slot

    explicit StateRec(unsigned nthreads)
        : responses(nthreads), applied_serial(nthreads, 0) {}
  };

  using Domain = HazardPointerDomain<2>;  // slot 0: state, slot 1: announce

 public:
  using value_type = T;

  /// SimQueue is wait-free: every announced op is applied within two
  /// collect rounds of the combining loop.
  static constexpr bool kIsWaitFree = true;

  explicit SimQueue(unsigned max_threads = 16)
      : nthreads_(max_threads < kMaxThreads ? max_threads : kMaxThreads),
        announce_(nthreads_),
        taken_(nthreads_) {
    state_->store(new StateRec(nthreads_), std::memory_order_relaxed);
    for (auto& a : announce_) a->store(nullptr, std::memory_order_relaxed);
    for (auto& t : taken_) t->store(false, std::memory_order_relaxed);
  }

  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  ~SimQueue() {
    delete state_->load(std::memory_order_relaxed);
    for (auto& a : announce_) delete a->load(std::memory_order_relaxed);
  }

  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : q_(o.q_), tid_(o.tid_), rec_(o.rec_), toggle_(o.toggle_),
          serial_(o.serial_) {
      o.q_ = nullptr;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (q_ != nullptr) {
        q_->hp_.release(rec_);
        // The slot keeps its last toggle parity; hand it to the next owner.
        q_->toggle_parity_[tid_] = toggle_;
        q_->serial_base_[tid_] = serial_;
        q_->taken_[tid_]->store(false, std::memory_order_release);
      }
    }

   private:
    friend class SimQueue;
    explicit Handle(SimQueue& q)
        : q_(&q), tid_(q.claim_tid()), rec_(q.hp_.acquire()) {
      toggle_ = q.toggle_parity_[tid_];
      serial_ = q.serial_base_[tid_];
    }
    SimQueue* q_;
    unsigned tid_;
    typename Domain::ThreadRec* rec_;
    /// My bit's current value in Toggles (only this thread flips it): the
    /// next flip adds +bit or -bit, never carrying.
    bool toggle_ = false;
    uint64_t serial_ = 0;
  };

  Handle get_handle() { return Handle(*this); }

  /// Wait-free enqueue (at most two combiner rounds).
  void enqueue(Handle& h, T v) {
    auto* r = new Request;
    r->enqueue = true;
    r->arg = std::move(v);
    (void)apply(h, r);
  }

  /// Wait-free dequeue; nullopt <=> observed empty.
  std::optional<T> dequeue(Handle& h) {
    auto* r = new Request;
    r->enqueue = false;
    Response resp = apply(h, r);
    if (!resp.has_value) return std::nullopt;
    return std::move(resp.value);
  }

  /// Diagnostics: current backlog (quiescent use).
  std::size_t size() const {
    return state_->load(std::memory_order_acquire)->items.size();
  }

 private:
  unsigned claim_tid() {
    for (unsigned i = 0; i < nthreads_; ++i) {
      bool expected = false;
      if (!taken_[i]->load(std::memory_order_relaxed) &&
          taken_[i]->compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
        return i;
      }
    }
    assert(false && "SimQueue thread registry exhausted");
    std::abort();
  }

  /// Announce `r` (ownership transferred), toggle, combine, read response.
  Response apply(Handle& h, Request* r) {
    const unsigned tid = h.tid_;
    const uint64_t bit = uint64_t{1} << tid;
    r->serial = ++h.serial_;
    // 1. Publish the announcement; retire the previous (completed) one.
    Request* old = announce_[tid]->exchange(r, std::memory_order_seq_cst);
    if (old != nullptr) hp_.retire(h.rec_, old);
    // 2. Flip my toggle bit: the P-Sim FAA (no carry — I own the bit).
    toggles_->fetch_add(h.toggle_ ? -int64_t(bit) : int64_t(bit),
                        std::memory_order_seq_cst);
    h.toggle_ = !h.toggle_;

    // 3. Combine: at most two rounds.
    for (int attempt = 0; attempt < 2; ++attempt) {
      StateRec* cur = hp_.protect(h.rec_, 0, *state_);
      if (cur->applied_serial[tid] == h.serial_) break;  // already absorbed
      uint64_t toggles = uint64_t(toggles_->load(std::memory_order_seq_cst));
      uint64_t todo = toggles ^ cur->applied;
      auto* next = new StateRec(*cur);  // the O(state) copy
      next->applied = toggles;
      for (unsigned j = 0; j < nthreads_; ++j) {
        if ((todo & (uint64_t{1} << j)) == 0) continue;
        Request* req = hp_.protect(h.rec_, 1, *announce_[j]);
        if (req == nullptr || next->applied_serial[j] >= req->serial) {
          continue;  // stale/absent view; our CAS is doomed anyway
        }
        next->applied_serial[j] = req->serial;
        if (req->enqueue) {
          next->items.push_back(req->arg);
          next->responses[j] = Response{};
        } else if (next->items.empty()) {
          next->responses[j] = Response{};  // EMPTY
        } else {
          next->responses[j] = Response{true, std::move(next->items.front())};
          next->items.pop_front();
        }
      }
      hp_.clear(h.rec_, 1);
      StateRec* expected = cur;
      if (state_->compare_exchange_strong(expected, next,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
        hp_.clear(h.rec_, 0);
        hp_.retire(h.rec_, cur);
      } else {
        delete next;  // lost; the winner's lineage absorbs me
      }
    }

    // 4. My request is absorbed in the current record; read my response.
    StateRec* cur = hp_.protect(h.rec_, 0, *state_);
    assert(cur->applied_serial[tid] == h.serial_ &&
           "two combiner rounds must absorb the request");
    Response resp = cur->responses[tid];
    hp_.clear(h.rec_, 0);
    return resp;
  }

  const unsigned nthreads_;
  CacheAligned<std::atomic<int64_t>> toggles_{0};
  CacheAligned<std::atomic<StateRec*>> state_{nullptr};
  std::vector<CacheAligned<std::atomic<Request*>>> announce_;
  std::vector<CacheAligned<std::atomic<bool>>> taken_;
  std::vector<bool> toggle_parity_ = std::vector<bool>(kMaxThreads, false);
  std::vector<uint64_t> serial_base_ = std::vector<uint64_t>(kMaxThreads, 0);
  Domain hp_;
};

}  // namespace wfq::baselines
