// Unit tests for the packed (pending, index) request-state word, the atom
// the paper's two-word-request consistency argument (§3.4) rests on.
#include "common/packed_state.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace wfq {
namespace {

TEST(PackedState, DefaultIsNotPendingIndexZero) {
  PackedState s;
  EXPECT_FALSE(s.pending());
  EXPECT_EQ(s.index(), 0u);
  EXPECT_EQ(s.word(), 0u);
}

TEST(PackedState, RoundTripsPendingAndIndex) {
  for (bool pending : {false, true}) {
    for (uint64_t idx : {uint64_t{0}, uint64_t{1}, uint64_t{12345},
                         PackedState::kMaxIndex}) {
      PackedState s(pending, idx);
      EXPECT_EQ(s.pending(), pending) << idx;
      EXPECT_EQ(s.index(), idx) << pending;
    }
  }
}

TEST(PackedState, WordRoundTrip) {
  PackedState s(true, 0x1234567890ABCDEFull & PackedState::kIndexMask);
  PackedState t = PackedState::from_word(s.word());
  EXPECT_EQ(s, t);
  EXPECT_EQ(t.pending(), true);
  EXPECT_EQ(t.index(), 0x1234567890ABCDEFull & PackedState::kIndexMask);
}

TEST(PackedState, IndexMaskedTo63Bits) {
  // An index with bit 63 set must not leak into the pending bit.
  PackedState s(false, ~uint64_t{0});
  EXPECT_FALSE(s.pending());
  EXPECT_EQ(s.index(), PackedState::kMaxIndex);
}

TEST(PackedState, EqualityComparesWholeWord) {
  EXPECT_EQ(PackedState(true, 7), PackedState(true, 7));
  EXPECT_FALSE(PackedState(true, 7) == PackedState(false, 7));
  EXPECT_FALSE(PackedState(true, 7) == PackedState(true, 8));
}

TEST(PackedState, PendingBitIsTopBit) {
  EXPECT_EQ(PackedState::kPendingBit, uint64_t{1} << 63);
  EXPECT_EQ(PackedState::kIndexMask, (uint64_t{1} << 63) - 1);
  EXPECT_EQ(PackedState(true, 0).word(), PackedState::kPendingBit);
}

TEST(PackedState, SingleCasClaimsRequest) {
  // The claim transition of Listing 3: (1, id) -> (0, cell) must be a
  // single CAS on the packed word.
  std::atomic<uint64_t> state{PackedState(true, 42).word()};
  uint64_t expected = PackedState(true, 42).word();
  EXPECT_TRUE(state.compare_exchange_strong(expected,
                                            PackedState(false, 99).word()));
  PackedState s = PackedState::from_word(state.load());
  EXPECT_FALSE(s.pending());
  EXPECT_EQ(s.index(), 99u);
  // A second claim attempt with the stale expected value must fail.
  expected = PackedState(true, 42).word();
  EXPECT_FALSE(state.compare_exchange_strong(expected,
                                             PackedState(false, 7).word()));
}

TEST(PackedState, ExactlyOneConcurrentClaimWins) {
  // Property: however many helpers race to claim a pending request, exactly
  // one CAS succeeds (Invariant 1 analogue at the request level).
  for (int round = 0; round < 200; ++round) {
    std::atomic<uint64_t> state{PackedState(true, 5).word()};
    std::atomic<int> wins{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&, t] {
        uint64_t expected = PackedState(true, 5).word();
        if (state.compare_exchange_strong(
                expected, PackedState(false, 100 + t).word())) {
          wins.fetch_add(1);
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(wins.load(), 1);
    EXPECT_FALSE(PackedState::from_word(state.load()).pending());
  }
}

}  // namespace
}  // namespace wfq
