# Empty dependencies file for bench_waitfreedom.
# This may be replaced when dependencies are built.
