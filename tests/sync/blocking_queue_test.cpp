// Tests for BlockingQueue (src/sync/blocking_queue.hpp): blocking pop
// semantics, the timed-pop timeout-vs-delivery race, the close()/drain()
// lifecycle (including under every reclaim policy), the zero-notify
// fast-path guarantee, and close() linearizability via the checker/history
// infrastructure.
#include "sync/blocking_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "checker/queue_checker.hpp"

namespace wfq {
namespace {

using sync::BlockingQueue;
using sync::BlockingWFQueue;
using sync::PopStatus;
using sync::WaitPolicy;

using BQ = BlockingWFQueue<uint64_t>;

TEST(BlockingQueue, TryPopMatchesRawQueueSemantics) {
  BQ q;
  auto h = q.get_handle();
  EXPECT_FALSE(q.try_pop(h).has_value());
  EXPECT_TRUE(q.push(h, 1));
  EXPECT_TRUE(q.push(h, 2));
  EXPECT_EQ(q.try_pop(h).value(), 1u);
  EXPECT_EQ(q.try_pop(h).value(), 2u);
  EXPECT_FALSE(q.try_pop(h).has_value());
}

TEST(BlockingQueue, PopWaitReturnsImmediatelyWhenNonEmpty) {
  BQ q;
  auto h = q.get_handle();
  q.push(h, 42);
  uint64_t v = 0;
  EXPECT_EQ(q.pop_wait(h, v), PopStatus::kOk);
  EXPECT_EQ(v, 42u);
}

TEST(BlockingQueue, PopWaitForTimesOutOnOpenEmptyQueue) {
  BQ q;
  auto h = q.get_handle();
  uint64_t v = 0;
  auto t0 = sync::WaitClock::now();
  EXPECT_EQ(q.pop_wait_for(h, v, std::chrono::milliseconds(20)),
            PopStatus::kTimeout);
  EXPECT_GE(sync::WaitClock::now() - t0, std::chrono::milliseconds(15));
}

TEST(BlockingQueue, PopWaitForWithParkOnlyPolicyStillTimesOut) {
  // Exercises the futex-timeout leg directly (no spin phase to hide it).
  BQ q;
  auto h = q.get_handle();
  uint64_t v = 0;
  EXPECT_EQ(q.pop_wait_for(h, v, std::chrono::milliseconds(10),
                           WaitPolicy::park_only()),
            PopStatus::kTimeout);
  auto s = q.stats();
  EXPECT_GE(s.deq_parks.load(), 1u);  // it really parked
}

TEST(BlockingQueue, PopWaitForWithSpinOnlyPolicyStillTimesOut) {
  // Regression: the deadline must be checked on every wait-loop iteration,
  // not only when the strategy escalates to a park — a pure-spin policy
  // never parks, and the timed API must not degrade into an unbounded wait.
  BQ q;
  auto h = q.get_handle();
  uint64_t v = 0;
  auto t0 = sync::WaitClock::now();
  EXPECT_EQ(q.pop_wait_for(h, v, std::chrono::milliseconds(10),
                           WaitPolicy::spin_only()),
            PopStatus::kTimeout);
  EXPECT_GE(sync::WaitClock::now() - t0, std::chrono::milliseconds(5));
  auto s = q.stats();
  EXPECT_EQ(s.deq_parks.load(), 0u);  // it spun the whole time
}

TEST(BlockingQueue, PopWaitDeliversFromConcurrentProducer) {
  BQ q;
  std::thread producer([&] {
    auto h = q.get_handle();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(h, 7);
  });
  auto h = q.get_handle();
  uint64_t v = 0;
  EXPECT_EQ(q.pop_wait(h, v), PopStatus::kOk);  // parks, then wakes
  EXPECT_EQ(v, 7u);
  producer.join();
}

// The timeout-vs-delivery race: a value that arrives "simultaneously" with
// the deadline must be delivered, not stranded — pop_wait_for runs one
// final dequeue attempt after observing the deadline. Deterministic check:
// with an already-deposited value and an already-expired deadline, the
// result must be kOk, never kTimeout.
TEST(BlockingQueue, ExpiredDeadlineStillDeliversDepositedValue) {
  BQ q;
  auto h = q.get_handle();
  q.push(h, 5);
  uint64_t v = 0;
  EXPECT_EQ(q.pop_wait_for(h, v, std::chrono::nanoseconds(0)), PopStatus::kOk);
  EXPECT_EQ(v, 5u);
}

// Probabilistic version of the same race: producers time their push near
// the consumer's deadline. Whatever the interleaving, the outcome must be
// one of {kOk with the value, kTimeout with the value still reachable} —
// never a lost value, never kClosed.
TEST(BlockingQueue, TimedPopRaceNeverLosesTheValue) {
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    BQ q;
    std::thread producer([&] {
      auto h = q.get_handle();
      std::this_thread::sleep_for(std::chrono::microseconds(r % 40));
      q.push(h, 9);
    });
    auto h = q.get_handle();
    uint64_t v = 0;
    PopStatus st = q.pop_wait_for(h, v, std::chrono::microseconds(20),
                                  WaitPolicy::park_only());
    producer.join();
    ASSERT_NE(st, PopStatus::kClosed);
    if (st == PopStatus::kOk) {
      ASSERT_EQ(v, 9u);
    } else {
      // Timed out: the push must still be fully visible now.
      auto left = q.try_pop(h);
      ASSERT_TRUE(left.has_value());
      ASSERT_EQ(*left, 9u);
    }
  }
}

// Regression for the seal-vs-deadline race: close() landing between a timed
// pop's failed final dequeue and its sealed-check must not produce kClosed
// ("closed AND drained") while the pre-close value is still undelivered.
// The consumer loops on short timeouts until it observes kClosed; at that
// point the value must already have been handed out and the queue empty.
TEST(BlockingQueue, TimedPopNeverReportsClosedWithResidue) {
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    BQ q;
    std::thread producer([&] {
      auto h = q.get_handle();
      std::this_thread::sleep_for(std::chrono::microseconds(r % 40));
      q.push(h, 9);
      q.close();
    });
    auto h = q.get_handle();
    bool delivered = false;
    for (;;) {
      uint64_t v = 0;
      PopStatus st = q.pop_wait_for(h, v, std::chrono::microseconds(10),
                                    WaitPolicy::park_only());
      if (st == PopStatus::kOk) {
        ASSERT_EQ(v, 9u);
        delivered = true;
      } else if (st == PopStatus::kClosed) {
        ASSERT_TRUE(delivered);  // kClosed before delivery = stranded item
        ASSERT_FALSE(q.try_pop(h).has_value());
        break;
      }
      // kTimeout: queue still open (or residue pending) — keep polling.
    }
    producer.join();
  }
}

TEST(BlockingQueue, CloseFailsProducersFast) {
  BQ q;
  auto h = q.get_handle();
  EXPECT_TRUE(q.push(h, 1));
  EXPECT_FALSE(q.closed());
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_TRUE(q.sealed());
  EXPECT_FALSE(q.push(h, 2));
  uint64_t vals[3] = {3, 4, 5};
  EXPECT_EQ(q.push_bulk(h, vals, 3), 0u);
  // Residue still drains; only then kClosed.
  uint64_t v = 0;
  EXPECT_EQ(q.pop_wait(h, v), PopStatus::kOk);
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(q.pop_wait(h, v), PopStatus::kClosed);
  EXPECT_EQ(q.pop_wait_for(h, v, std::chrono::milliseconds(5)),
            PopStatus::kClosed);
  uint64_t buf[4];
  EXPECT_EQ(q.pop_wait_bulk(h, buf, 4), 0u);
}

TEST(BlockingQueue, CloseIsIdempotentAndConcurrent) {
  BQ q;
  auto h = q.get_handle();
  q.push(h, 1);
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) closers.emplace_back([&] { q.close(); });
  for (auto& t : closers) t.join();
  EXPECT_TRUE(q.sealed());  // every close() returned only once sealed
  uint64_t v = 0;
  EXPECT_EQ(q.pop_wait(h, v), PopStatus::kOk);
  EXPECT_EQ(q.pop_wait(h, v), PopStatus::kClosed);
}

TEST(BlockingQueue, CloseWhileParkedWakesAllConsumers) {
  BQ q;
  constexpr unsigned kConsumers = 4;
  std::atomic<unsigned> got_closed{0};
  std::vector<std::thread> consumers;
  for (unsigned i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      auto h = q.get_handle();
      uint64_t v = 0;
      // Empty queue: every consumer escalates to a park.
      PopStatus st = q.pop_wait(h, v, WaitPolicy::park_only());
      if (st == PopStatus::kClosed) got_closed.fetch_add(1);
    });
  }
  // Give them time to actually park (not required for correctness, but it
  // makes the test exercise the close-wakes-parked path, not the re-check).
  while (q.waiters() < kConsumers) std::this_thread::yield();
  q.close();
  for (auto& t : consumers) t.join();  // a stranded parked consumer hangs here
  EXPECT_EQ(got_closed.load(), kConsumers);
  EXPECT_EQ(q.waiters(), 0u);
  auto s = q.stats();
  EXPECT_GE(s.deq_parks.load(), 1u);
}

TEST(BlockingQueue, PopWaitBulkDeliversBatchesAndClosedZero) {
  BQ q;
  auto h = q.get_handle();
  uint64_t vals[10];
  for (uint64_t i = 0; i < 10; ++i) vals[i] = i + 1;
  EXPECT_EQ(q.push_bulk(h, vals, 10), 10u);
  uint64_t out[6];
  std::size_t got = q.pop_wait_bulk(h, out, 6);
  EXPECT_EQ(got, 6u);
  for (uint64_t i = 0; i < got; ++i) EXPECT_EQ(out[i], i + 1);
  q.close();
  got = q.pop_wait_bulk(h, out, 6);  // residue first
  EXPECT_EQ(got, 4u);
  for (uint64_t i = 0; i < got; ++i) EXPECT_EQ(out[i], i + 7);
  EXPECT_EQ(q.pop_wait_bulk(h, out, 6), 0u);  // 0 <=> closed and drained
}

TEST(BlockingQueue, DrainCollectsEverythingReachable) {
  BQ q;
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 200; ++i) q.push(h, i);
  q.close();
  std::vector<uint64_t> out;
  EXPECT_EQ(q.drain(h, out), 200u);
  ASSERT_EQ(out.size(), 200u);
  for (uint64_t i = 0; i < 200; ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(q.drain(h, out), 0u);
}

// The fence-free fast-path guarantee, as a hard assertion: a workload in
// which no consumer ever parks must complete with zero notify_calls — the
// producer side never even entered the notify path.
TEST(BlockingQueue, NoWaiterWorkloadIssuesZeroNotifies) {
  BQ q;
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOps = 20000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 1; i <= kOps; ++i) {
        q.push(h, (uint64_t(t) << 32) | i);
        (void)q.try_pop(h);  // try_pop never registers as a waiter
      }
    });
  }
  for (auto& t : ts) t.join();
  auto s = q.stats();
  EXPECT_EQ(s.notify_calls.load(), 0u);
  EXPECT_EQ(s.deq_parks.load(), 0u);
  EXPECT_EQ(s.deq_spurious_wakeups.load(), 0u);
}

TEST(BlockingQueue, StatsMergeCountsParksAndNotifies) {
  BQ q;
  std::thread consumer([&] {
    auto h = q.get_handle();
    uint64_t v = 0;
    while (q.pop_wait(h, v, WaitPolicy::park_only()) == PopStatus::kOk) {
    }
  });
  auto h = q.get_handle();
  // Park/notify at least once: wait until the consumer registers, then push.
  while (q.waiters() == 0) std::this_thread::yield();
  q.push(h, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  q.close();
  consumer.join();
  auto s = q.stats();
  EXPECT_GE(s.deq_parks.load(), 1u);
  EXPECT_GE(s.notify_calls.load(), 1u);
}

// Close/drain conservation under every reclamation policy (satellite
// requirement): producers push until close() cuts them off mid-stream;
// every push that reported success must come out exactly once before
// consumers see kClosed.
template <template <class> class Policy>
struct PolicyTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 64;
  template <class SL>
  using Reclaim = Policy<SL>;
};

template <class Traits>
class BlockingReclaimMatrixTest : public ::testing::Test {};

using AllPolicyTraits =
    ::testing::Types<PolicyTraits<PaperReclaim>, PolicyTraits<HpReclaim>,
                     PolicyTraits<EpochReclaim>>;
TYPED_TEST_SUITE(BlockingReclaimMatrixTest, AllPolicyTraits);

TYPED_TEST(BlockingReclaimMatrixTest, CloseDrainConservation) {
  WfConfig cfg;
  cfg.max_garbage = 4;  // small: churn segments while blocking ops run
  BlockingQueue<WFQueue<uint64_t, TypeParam>> q(cfg);
  constexpr unsigned kProducers = 3, kConsumers = 3;
  std::atomic<uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<uint64_t> pushed_n{0}, popped_n{0};

  std::vector<std::thread> producers, consumers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto h = q.get_handle();
      uint64_t local_sum = 0, local_n = 0;
      for (uint64_t i = 1;; ++i) {
        uint64_t v = (uint64_t(p + 1) << 40) | i;
        if (!q.push(h, v)) break;  // closed mid-stream
        local_sum += v;
        ++local_n;
      }
      pushed_sum.fetch_add(local_sum);
      pushed_n.fetch_add(local_n);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      auto h = q.get_handle();
      uint64_t local_sum = 0, local_n = 0, v = 0;
      while (q.pop_wait(h, v) == PopStatus::kOk) {
        local_sum += v;
        ++local_n;
      }
      popped_sum.fetch_add(local_sum);
      popped_n.fetch_add(local_n);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q.close();  // cuts producers off mid-push; quiesces in-flight enqueues
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  // Every successful push accounted for exactly once — close() froze the
  // push set before any consumer could observe kClosed.
  EXPECT_EQ(pushed_n.load(), popped_n.load());
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
}

// Close linearizability through the checker (acceptance criterion): record
// a full history where close() cuts producers off, consumers block, and
// the post-close dequeue-EMPTY responses (the kClosed observations) are
// recorded as EMPTY ops. check_queue_history then verifies FIFO + the
// EMPTY legality rule P4: an EMPTY is legal only if some moment within its
// [invoke, respond] window had the queue actually empty — which is exactly
// the "kClosed only after everything pushed-before-close drained" claim.
TEST(BlockingQueue, CloseIsLinearizableUnderChecker) {
  for (int round = 0; round < 5; ++round) {
    BQ q;
    lin::HistoryRecorder rec;
    constexpr unsigned kProducers = 2, kConsumers = 2;
    std::vector<lin::HistoryRecorder::ThreadLog*> plogs, clogs;
    for (unsigned i = 0; i < kProducers; ++i) plogs.push_back(rec.make_log(i));
    for (unsigned i = 0; i < kConsumers; ++i) {
      clogs.push_back(rec.make_log(kProducers + i));
    }
    // Bounded per-producer volume keeps the history small enough for the
    // checker; close() still races the tail of the stream (some pushes
    // fail mid-run), which is the interesting part.
    constexpr uint64_t kMaxPerProducer = 2000;
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();
        auto* log = plogs[p];
        for (uint64_t i = 1; i <= kMaxPerProducer; ++i) {
          uint64_t v = (uint64_t(p + 1) << 40) | i;
          uint64_t ts = log->invoke();
          if (!q.push(h, v)) break;  // failed push: no effect, not recorded
          log->complete(lin::OpKind::kEnqueue, v, ts);
          if (i % 256 == 0) std::this_thread::yield();  // let close() race in
        }
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&, c] {
        auto h = q.get_handle();
        auto* log = clogs[c];
        for (;;) {
          uint64_t v = 0;
          uint64_t ts = log->invoke();
          PopStatus st = q.pop_wait(h, v);
          if (st == PopStatus::kOk) {
            log->complete(lin::OpKind::kDequeue, v, ts);
          } else {
            // kClosed: the queue was observed empty (and sealed) inside
            // this op's window — record it as the EMPTY response it is.
            log->complete(lin::OpKind::kDequeueEmpty, 0, ts);
            break;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    q.close();
    for (auto& t : threads) t.join();
    auto result = lin::check_queue_history(rec.collect());
    ASSERT_TRUE(result.linearizable) << result.violation;
  }
}

}  // namespace
}  // namespace wfq
