// Unit tests for cache-line alignment utilities.
#include "common/align.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace wfq {
namespace {

TEST(Align, CacheAlignedOccupiesWholeLines) {
  static_assert(sizeof(CacheAligned<std::atomic<uint64_t>>) == kCacheLineSize);
  static_assert(sizeof(CacheAligned<char[100]>) == 2 * kCacheLineSize);
}

TEST(Align, AdjacentMembersLandOnDistinctLines) {
  struct Pair {
    CacheAligned<std::atomic<uint64_t>> a;
    CacheAligned<std::atomic<uint64_t>> b;
  } p;
  auto line = [](const void* ptr) {
    return reinterpret_cast<uintptr_t>(ptr) / kCacheLineSize;
  };
  EXPECT_NE(line(&p.a), line(&p.b));
}

TEST(Align, AccessorsWork) {
  CacheAligned<int> x(41);
  EXPECT_EQ(*x, 41);
  *x += 1;
  EXPECT_EQ(x.value, 42);
  CacheAligned<std::atomic<int>> a(5);
  EXPECT_EQ(a->load(), 5);
}

TEST(Align, AlignedNewRespectsAlignment) {
  struct Big {
    char data[200];
  };
  for (int i = 0; i < 64; ++i) {
    Big* p = aligned_new<Big>();
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kCacheLineSize, 0u);
    aligned_delete(p);
  }
}

TEST(Align, AlignedNewForwardsConstructorArgs) {
  struct Val {
    int v;
    explicit Val(int x) : v(x) {}
  };
  Val* p = aligned_new<Val>(17);
  EXPECT_EQ(p->v, 17);
  aligned_delete(p);
}

TEST(Align, AlignedDeleteNullIsNoop) {
  int* p = nullptr;
  aligned_delete(p);  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace wfq
