
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/wf_queue_basic_test.cpp" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_basic_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_basic_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_codec_test.cpp" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_codec_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_codec_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_fuzz_test.cpp" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_fuzz_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_handle_test.cpp" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_handle_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_handle_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_segment_test.cpp" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_segment_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_segment_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_stats_test.cpp" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_stats_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_traits_matrix_test.cpp" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_traits_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue.dir/core/wf_queue_traits_matrix_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfq_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
