file(REMOVE_RECURSE
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_basic_test.cpp.o"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_basic_test.cpp.o.d"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_codec_test.cpp.o"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_codec_test.cpp.o.d"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_fuzz_test.cpp.o"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_fuzz_test.cpp.o.d"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_handle_test.cpp.o"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_handle_test.cpp.o.d"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_segment_test.cpp.o"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_segment_test.cpp.o.d"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_stats_test.cpp.o"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_stats_test.cpp.o.d"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_traits_matrix_test.cpp.o"
  "CMakeFiles/test_wfqueue.dir/core/wf_queue_traits_matrix_test.cpp.o.d"
  "test_wfqueue"
  "test_wfqueue.pdb"
  "test_wfqueue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
