// Public typed interface to the wait-free queue.
//
// `wfq::WFQueue<T>` is a linearizable, wait-free, multi-producer
// multi-consumer FIFO queue of `T`. Every participating thread operates
// through a `Handle` obtained from `get_handle()`; the handle carries the
// thread's segment pointers, helping state and hazard pointer (§3.3 of the
// paper). Handles are cheap to acquire (recycled through a freelist) and
// RAII-managed.
//
// Usage:
//
//   wfq::WFQueue<int> q;
//   auto h = q.get_handle();         // per thread
//   q.enqueue(h, 42);
//   std::optional<int> v = q.dequeue(h);   // nullopt <=> observed empty
//
// Progress: enqueue and dequeue are wait-free — every call completes in a
// bounded number of steps regardless of what other threads do (Theorem 4.6)
// — provided `Traits::Faa` is the native fetch-and-add. With `EmulatedFaa`
// (the paper's Power7 configuration) operations are lock-free only.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/slot_codec.hpp"
#include "core/wf_queue_core.hpp"

namespace wfq {

template <class T, class Traits = DefaultWfTraits>
class WFQueue {
  using Core = WFQueueCore<Traits>;
  using Codec = SlotCodec<T>;

 public:
  using value_type = T;
  using Traits_ = Traits;

  /// Declared capability (see queue_concepts.hpp): every operation
  /// completes in a bounded number of steps; the waitfreedom bench holds
  /// the implementation to this claim.
  static constexpr bool kIsWaitFree = true;

  /// Per-thread access token. Movable, not copyable; releases its slot in
  /// the helper ring back to the queue's freelist on destruction.
  using Handle = typename Core::HandleGuard;

  /// `patience` = extra fast-path attempts before helping kicks in
  /// (paper's PATIENCE; 10 = WF-10, 0 = WF-0). `max_garbage` = retired
  /// segments accumulated before a dequeue triggers reclamation.
  explicit WFQueue(WfConfig cfg = {}) : core_(cfg) {}

  ~WFQueue() {
    if constexpr (Codec::kBoxed) {
      // Drain still-boxed payloads so they don't leak. The queue is being
      // destroyed, so no concurrent access is possible.
      auto h = get_handle();
      for (;;) {
        uint64_t slot = core_.dequeue(h.get());
        if (slot == Core::kEmpty || slot == Core::kNoMem) break;
        Codec::destroy_slot(slot);
      }
    }
  }

  /// Registers the calling scope as a queue participant.
  Handle get_handle() { return Handle(core_); }

  /// Appends `v` to the queue. Wait-free. Returns false only when segment
  /// allocation failed past all retries and the reserve pool (the OOM
  /// contract, docs/API.md): the value is NOT enqueued and the queue is
  /// still intact — the call may simply be retried later.
  bool enqueue(Handle& h, T v) {
    uint64_t slot = Codec::encode(std::move(v));
    bool ok = core_.enqueue(h.get(), slot);
    if (!ok) Codec::destroy_slot(slot);
    return ok;
  }

  /// Removes the oldest value; `nullopt` means the queue was observed empty
  /// at the operation's linearization point. Wait-free. Throws
  /// SegmentAllocError when segment allocation failed past all retries and
  /// the reserve pool; no value is lost and the queue remains usable.
  std::optional<T> dequeue(Handle& h) {
    uint64_t slot = core_.dequeue(h.get());
    if (slot == Core::kEmpty) return std::nullopt;
    if (slot == Core::kNoMem) throw SegmentAllocError{};
    return Codec::decode(slot);
  }

  /// Appends vals[0..count) in order, paying the contended FAA once for the
  /// whole batch. Linearizes as `count` consecutive enqueues (batch-as-
  /// sequence; see docs/API.md). Each item is individually wait-free.
  /// Returns how many items were enqueued: fewer than `count` only under
  /// allocation failure (the committed items form a prefix of `vals`).
  std::size_t enqueue_bulk(Handle& h, const T* vals, std::size_t count) {
    if (count == 0) return 0;
    if constexpr (std::is_same_v<T, uint64_t>) {
      // Identity codec: hand the caller's array straight to the core.
      return core_.enqueue_bulk(h.get(), vals, count);
    } else {
      uint64_t inline_slots[kInlineBulk];
      std::vector<uint64_t> heap_slots;
      uint64_t* slots = inline_slots;
      if (count > kInlineBulk) {
        heap_slots.resize(count);
        slots = heap_slots.data();
      }
      std::size_t encoded = 0;
      try {
        for (; encoded < count; ++encoded) {
          slots[encoded] = Codec::encode(T(vals[encoded]));
        }
      } catch (...) {
        // A throwing copy/encode must not leak the boxes already made.
        for (std::size_t j = 0; j < encoded; ++j) Codec::destroy_slot(slots[j]);
        throw;
      }
      std::size_t committed = core_.enqueue_bulk(h.get(), slots, count);
      // Boxes past the committed prefix never entered the queue.
      for (std::size_t j = committed; j < count; ++j) {
        Codec::destroy_slot(slots[j]);
      }
      return committed;
    }
  }

  /// Removes up to `count` oldest values into out[0..), in FIFO order, with
  /// one FAA. Returns how many were dequeued; fewer than `count` means the
  /// queue was observed empty during the call (the batch's emptiness
  /// witness — see docs/API.md for the batch-linearizability contract).
  std::size_t dequeue_bulk(Handle& h, T* out, std::size_t count) {
    if (count == 0) return 0;
    if constexpr (std::is_same_v<T, uint64_t>) {
      return core_.dequeue_bulk(h.get(), out, count);
    } else {
      uint64_t inline_slots[kInlineBulk];
      std::vector<uint64_t> heap_slots;
      uint64_t* slots = inline_slots;
      if (count > kInlineBulk) {
        heap_slots.resize(count);
        slots = heap_slots.data();
      }
      std::size_t got = core_.dequeue_bulk(h.get(), slots, count);
      for (std::size_t j = 0; j < got; ++j) out[j] = Codec::decode(slots[j]);
      return got;
    }
  }

  /// Operation-path statistics (Table 2 instrumentation).
  OpStats stats() const { return core_.collect_stats(); }
  void reset_stats() { core_.reset_stats(); }

  /// Observability snapshot: merged latency histograms + trace records
  /// (empty under the default NullMetrics traits; see src/obs/metrics.hpp).
  /// `include_global_ring = false` is for multi-instance aggregators (the
  /// sharded layer), which fold the shared process-global ring in once.
  obs::ObsSnapshot collect_obs(bool include_global_ring = true) const {
    return core_.collect_obs(include_global_ring);
  }
  void reset_obs() { core_.reset_obs(); }

  /// Segment-list introspection for tests and reclamation benchmarks.
  std::size_t live_segments() const { return core_.live_segments(); }
  int64_t segments_outstanding() const { return core_.segments_outstanding(); }
  std::size_t peak_live_segments() const {
    return core_.peak_live_segments();
  }
  uint64_t tail_index() const { return core_.tail_index(); }
  uint64_t head_index() const { return core_.head_index(); }

  /// Heuristic occupancy (see WFQueueCore::approx_size caveats).
  uint64_t approx_size() const { return core_.approx_size(); }
  const WfConfig& config() const noexcept { return core_.config(); }

  /// Escape hatch for white-box tests and the harness.
  Core& core() noexcept { return core_; }

 private:
  /// Slot-encoding scratch for bulk calls stays on the stack up to this
  /// many items; larger batches take one heap allocation.
  static constexpr std::size_t kInlineBulk = 64;

  Core core_;
};

}  // namespace wfq
