// Cross-validation of the two linearizability checkers: the polynomial
// bad-pattern checker (Henzinger-Sezgin-Vafeiadis conditions) and the
// brute-force definitional search must agree on every history small enough
// for both. Thousands of random histories — valid-looking and adversarial —
// probe the agreement; any divergence is a bug in one of the checkers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "checker/brute_checker.hpp"
#include "checker/queue_checker.hpp"
#include "common/random.hpp"

namespace wfq::lin {
namespace {

Op enq(uint64_t v, uint64_t t0, uint64_t t1) {
  return Op{OpKind::kEnqueue, 0, v, t0, t1};
}
Op deq(uint64_t v, uint64_t t0, uint64_t t1) {
  return Op{OpKind::kDequeue, 0, v, t0, t1};
}
Op deq_empty(uint64_t t0, uint64_t t1) {
  return Op{OpKind::kDequeueEmpty, 0, 0, t0, t1};
}

void expect_agree(const std::vector<Op>& h, uint64_t seed_info = 0) {
  auto pattern = check_queue_history(h);
  // The pattern checker rejects duplicate-enqueue histories as a
  // precondition violation; skip those for agreement (the generator below
  // avoids them anyway).
  if (!pattern.linearizable &&
      pattern.violation.find("precondition") != std::string::npos) {
    return;
  }
  bool brute = brute_force_linearizable(h);
  ASSERT_EQ(pattern.linearizable, brute)
      << "checkers disagree (seed info " << seed_info << "): pattern says "
      << (pattern.linearizable ? "linearizable" : pattern.violation)
      << ", brute force says " << (brute ? "linearizable" : "not");
}

TEST(CheckerCrossValidation, HandCraftedCases) {
  // The corpus from queue_checker_test, both polarities.
  expect_agree({enq(1, 0, 1), enq(2, 2, 3), deq(1, 4, 5), deq(2, 6, 7),
                deq_empty(8, 9)});
  expect_agree({enq(1, 0, 10), enq(2, 1, 9), deq(2, 20, 21), deq(1, 22, 23)});
  expect_agree({enq(1, 0, 1), enq(2, 2, 3), deq(2, 10, 20), deq(1, 11, 19)});
  expect_agree({enq(1, 0, 1), deq(1, 2, 10), deq_empty(3, 9)});
  expect_agree({enq(1, 0, 10), deq_empty(1, 9), deq(1, 20, 21)});
  expect_agree({enq(1, 0, 1), enq(2, 2, 3), deq(1, 4, 5)});
  expect_agree({enq(1, 0, 1), enq(2, 2, 3), deq(2, 4, 5), deq(1, 6, 7)});
  expect_agree({enq(1, 0, 1), enq(2, 2, 3), deq(2, 4, 5)});
  expect_agree({enq(1, 0, 1), deq_empty(2, 3), deq(1, 4, 5)});
  expect_agree({enq(1, 0, 1), deq_empty(2, 3)});
  expect_agree({deq(99, 0, 1)});
  expect_agree({enq(1, 0, 1), deq(1, 2, 3), deq(1, 4, 5)});
  expect_agree({deq(1, 0, 1), enq(1, 2, 3)});
}

/// Random history generator. Produces a mix of plausibly-valid and
/// deliberately broken histories: every event gets a DISTINCT timestamp
/// (as the real recorder guarantees via its FAA clock — with ties, the
/// precedence-order and linearization-point views of linearizability
/// diverge at interval boundaries and neither checker would be "wrong");
/// dequeue results are drawn from the enqueued pool (sometimes duplicated)
/// or are EMPTY.
std::vector<Op> random_history(Xorshift128Plus& rng, unsigned max_ops) {
  unsigned n_enq = 1 + unsigned(rng.next_below(max_ops / 2));
  unsigned n_deq = unsigned(rng.next_below(max_ops / 2 + 1));
  unsigned n = n_enq + n_deq;
  // 2n distinct timestamps, shuffled, two per operation (ordered).
  std::vector<uint64_t> ts(2 * n);
  for (unsigned i = 0; i < 2 * n; ++i) ts[i] = i;
  for (unsigned i = 2 * n - 1; i > 0; --i) {
    std::swap(ts[i], ts[rng.next_below(i + 1)]);
  }
  unsigned next_ts = 0;
  auto interval = [&](uint64_t& t0, uint64_t& t1) {
    t0 = ts[next_ts++];
    t1 = ts[next_ts++];
    if (t0 > t1) std::swap(t0, t1);
  };
  std::vector<Op> h;
  std::vector<uint64_t> values;
  for (unsigned i = 0; i < n_enq; ++i) {
    uint64_t t0, t1;
    interval(t0, t1);
    h.push_back(enq(i + 1, t0, t1));
    values.push_back(i + 1);
  }
  for (unsigned i = 0; i < n_deq; ++i) {
    uint64_t t0, t1;
    interval(t0, t1);
    switch (rng.next_below(4)) {
      case 0:
        h.push_back(deq_empty(t0, t1));
        break;
      default: {
        uint64_t v = values[rng.next_below(values.size())];
        h.push_back(deq(v, t0, t1));
        break;
      }
    }
  }
  // Duplicate dequeues occur occasionally (tests P2 agreement); the brute
  // checker handles them naturally.
  return h;
}

class CheckerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerFuzz, RandomHistoriesAgree) {
  Xorshift128Plus rng(GetParam());
  int linearizable = 0, broken = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto h = random_history(rng, 9);
    auto pattern = check_queue_history(h);
    if (!pattern.linearizable &&
        pattern.violation.find("precondition") != std::string::npos) {
      continue;
    }
    bool brute = brute_force_linearizable(h);
    ASSERT_EQ(pattern.linearizable, brute)
        << "trial " << trial << ": pattern="
        << (pattern.linearizable ? "OK" : pattern.violation);
    (pattern.linearizable ? linearizable : broken)++;
  }
  // The generator must be exercising both polarities, otherwise the fuzz
  // proves nothing.
  EXPECT_GT(linearizable, 50);
  EXPECT_GT(broken, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(CheckerCrossValidation, BruteHandlesSequentialCorpus) {
  // Longer strictly-sequential histories stay cheap for the brute checker
  // (no overlap -> single candidate at each step).
  std::vector<Op> h;
  uint64_t t = 0;
  for (uint64_t i = 1; i <= 20; ++i) {
    h.push_back(enq(i, t, t + 1));
    t += 2;
  }
  for (uint64_t i = 1; i <= 20; ++i) {
    h.push_back(deq(i, t, t + 1));
    t += 2;
  }
  h.push_back(deq_empty(t, t + 1));
  EXPECT_TRUE(brute_force_linearizable(h));
  EXPECT_TRUE(check_queue_history(h));
}

}  // namespace
}  // namespace wfq::lin
