// Shared fixtures for the fault-injection tests: traits with the scripted
// injector compiled in, script lifecycle RAII, and the seed plumbing that
// makes a failing run reproducible (`WFQ_FAULT_SEED=<n> ctest -R Fault...`).
//
// The ScriptedInjector is process-global, so each gtest TEST must own the
// script for its whole run. ctest executes every discovered test in its own
// process (gtest_discover_tests), which makes that ownership free; within a
// test, ScriptReset brackets each experiment.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "core/wf_queue_core.hpp"
#include "harness/fault_inject.hpp"

namespace wfq::fault_test {

using Inj = fault::ScriptedInjector;

/// DefaultWfTraits with the scripted injector compiled in. Everything else
/// (segment size, FAA, reclamation policy, stats) is the production
/// configuration — the point of the harness is to fault the real code.
struct FaultTraits : DefaultWfTraits {
  using Injector = fault::ScriptedInjector;
};

/// Small segments so segment extension and reclamation are reachable with
/// tens of operations instead of thousands.
struct FaultSmallTraits : FaultTraits {
  static constexpr std::size_t kSegmentSize = 64;
};

/// Clears the process-global script on entry and exit so no experiment can
/// leak armed points, primed allocation failures, or the victim flag into
/// the next one. The victim thread itself must still unset its thread-local
/// flag (set_victim(false)) before exiting if the thread object is reused.
struct ScriptReset {
  ScriptReset() { Inj::reset(); }
  ~ScriptReset() {
    Inj::set_victim(false);
    Inj::reset();
  }
  ScriptReset(const ScriptReset&) = delete;
  ScriptReset& operator=(const ScriptReset&) = delete;
};

/// Workload seed: WFQ_FAULT_SEED env var, default 1234. tools/ci.sh runs
/// the fault tests under a fixed set of seeds; a failure report names the
/// seed so the exact schedule pressure can be replayed.
inline std::uint64_t fault_seed() {
  if (const char* s = std::getenv("WFQ_FAULT_SEED")) {
    char* end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (end != s) return v;
  }
  return 1234;
}

}  // namespace wfq::fault_test
