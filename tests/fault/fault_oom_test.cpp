// OOM graceful degradation: segment allocation goes through one fallible
// seam (SegmentList::allocate_fresh) with bounded retries and an opt-in
// pre-reserved pool. When everything is exhausted an operation fails
// *cleanly* — error return at the core, SegmentAllocError at the typed
// wrapper — with no value lost and the queue fully intact and retryable.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_core.hpp"
#include "fault/fault_test_util.hpp"

namespace wfq {
namespace {

using fault_test::FaultSmallTraits;
using fault_test::Inj;
using Core = WFQueueCore<FaultSmallTraits>;
constexpr std::size_t kSeg = FaultSmallTraits::kSegmentSize;

// Prime `n` pending allocation failures. The kAllocFail action fires on
// the victim's next pass through `point`; the primed failures are then
// consumed at the allocation seam by whichever thread allocates next.
void prime_alloc_failures(std::uint64_t n) {
  Inj::set_victim(true);
  ASSERT_TRUE(Inj::arm("enq_begin", fault::Action::kAllocFail, 1, n));
}

TEST(FaultOom, ReservePoolAbsorbsTransientFailure) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/10, /*max_garbage=*/1 << 20, /*reserve=*/4});
  prime_alloc_failures(3);  // one allocation's worth of retries, exactly

  Core::HandleGuard h(q);
  // Three segments of traffic: the first extension eats the 3 primed
  // failures (all retries) and must be served by the reserve pool; later
  // extensions allocate normally again.
  const std::uint64_t n = 3 * kSeg;
  for (std::uint64_t i = 1; i <= n; ++i) {
    ASSERT_TRUE(q.enqueue(h.get(), i)) << "enqueue " << i;
  }
  for (std::uint64_t i = 1; i <= n; ++i) {
    ASSERT_EQ(q.dequeue(h.get()), i);  // FIFO intact through the fallback
  }
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);

  EXPECT_EQ(Inj::alloc_failures(), 3u);  // injected attempts
  OpStats s = q.collect_stats();
  // ...but zero *operation-visible* failures: the airbag absorbed them.
  EXPECT_EQ(s.alloc_failures.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(s.reserve_pool_hits.load(std::memory_order_relaxed), 1u);
}

TEST(FaultOom, ExhaustionFailsCleanlyAndRecovers) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/10, /*max_garbage=*/1 << 20, /*reserve=*/2});
  prime_alloc_failures(1u << 20);  // memory pressure does not let up

  Core::HandleGuard h(q);
  // Capacity before exhaustion: the pre-allocated first segment plus the
  // two reserve segments. Every enqueue past that fails cleanly.
  std::vector<std::uint64_t> ok;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    if (q.enqueue(h.get(), i)) {
      EXPECT_EQ(ok.size() + 1, i) << "non-contiguous success prefix";
      ok.push_back(i);
    }
  }
  EXPECT_EQ(ok.size(), 3 * kSeg);

  OpStats s = q.collect_stats();
  EXPECT_EQ(s.reserve_pool_hits.load(std::memory_order_relaxed), 2u);
  EXPECT_GE(s.alloc_failures.load(std::memory_order_relaxed), 1u);

  // Memory pressure eases: the queue recovers with nothing corrupted and
  // nothing lost — the successful prefix drains in FIFO order, then new
  // traffic flows.
  Inj::reset();
  ASSERT_TRUE(q.enqueue(h.get(), 424242));
  for (std::uint64_t i = 1; i <= ok.size(); ++i) {
    ASSERT_EQ(q.dequeue(h.get()), i);
  }
  EXPECT_EQ(q.dequeue(h.get()), 424242u);
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);
}

TEST(FaultOom, DequeueReportsNoMemCleanly) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/10, /*max_garbage=*/1 << 20, /*reserve=*/0});
  prime_alloc_failures(1u << 20);

  Core::HandleGuard h(q);
  // Fill the pre-allocated segment, then push T past it with failing
  // enqueues: H will need the missing segment too.
  for (std::uint64_t i = 1; i <= kSeg; ++i) {
    ASSERT_TRUE(q.enqueue(h.get(), i));
  }
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(q.enqueue(h.get(), 999));
  // All stored values come out untouched...
  for (std::uint64_t i = 1; i <= kSeg; ++i) {
    ASSERT_EQ(q.dequeue(h.get()), i);
  }
  // ...and the next dequeue needs a segment that cannot be allocated:
  // kNoMem, not a throw from find_cell, and nothing was consumed.
  EXPECT_EQ(q.dequeue(h.get()), Core::kNoMem);
  Inj::reset();
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);  // retryable: now it's EMPTY
}

TEST(FaultOom, BulkEnqueueCommitsPrefixUnderExhaustion) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/10, /*max_garbage=*/1 << 20, /*reserve=*/0});
  // Prime at the bulk path's own post-FAA point (a bulk op never passes
  // enq_begin): the storm starts after the indices are claimed but before
  // any cell walk, so every fresh-segment allocation below fails.
  Inj::set_victim(true);
  ASSERT_TRUE(
      Inj::arm("enq_bulk_faa_post", fault::Action::kAllocFail, 1, 1u << 20));

  Core::HandleGuard h(q);
  // A two-chunk batch on the empty queue: chunk one lands in the
  // pre-allocated segment and commits; chunk two needs a fresh segment,
  // which cannot be had. The contract is a clean committed prefix (here in
  // chunk granularity — a failed cell walk abandons its whole chunk).
  static_assert(Core::kBulkChunk == kSeg,
                "test assumes one chunk == one segment");
  constexpr std::size_t kBatch = 2 * Core::kBulkChunk;
  std::uint64_t batch[kBatch];
  for (std::uint64_t j = 0; j < kBatch; ++j) batch[j] = 1000 + j;
  EXPECT_EQ(q.enqueue_bulk(h.get(), batch, kBatch), Core::kBulkChunk);
  for (std::uint64_t j = 0; j < Core::kBulkChunk; ++j) {
    ASSERT_EQ(q.dequeue(h.get()), 1000 + j);  // the prefix, in order
  }
  EXPECT_EQ(q.dequeue(h.get()), Core::kNoMem);  // H parked at the gap
  Inj::reset();
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);  // and it heals
}

TEST(FaultOom, DebtParkedIndexIsRepaidByLaterEnqueue) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/10, /*max_garbage=*/1 << 20, /*reserve=*/0});

  Core::HandleGuard h(q);
  for (std::uint64_t i = 1; i <= kSeg; ++i) {
    ASSERT_TRUE(q.enqueue(h.get(), i));
  }
  for (std::uint64_t i = 1; i <= kSeg; ++i) {
    ASSERT_EQ(q.dequeue(h.get()), i);
  }
  // H == T == kSeg. The next dequeue's FAA consumes index kSeg, whose
  // segment cannot be materialized: instead of abandoning the index, the
  // dequeuer must park it in the debt table and fail cleanly.
  Inj::set_victim(true);
  ASSERT_TRUE(Inj::arm("deq_begin", fault::Action::kAllocFail, 1, 1u << 20));
  EXPECT_EQ(q.dequeue(h.get()), Core::kNoMem);

  // Memory returns. The enqueue's deposit lands exactly on the parked
  // index — a cell no dequeue will ever visit. The depositor must claim
  // the debt, seal the dead cell, and deposit the value again at a fresh
  // index: without the retraction, 777 would be stranded forever.
  Inj::reset();
  ASSERT_TRUE(q.enqueue(h.get(), 777));
  EXPECT_EQ(q.dequeue(h.get()), 777u);
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);

  OpStats s = q.collect_stats();
  EXPECT_EQ(s.oom_rescues.load(std::memory_order_relaxed), 1u);
}

TEST(FaultOom, TypedWrapperThrowsSegmentAllocError) {
  fault_test::ScriptReset script;
  WFQueue<std::uint64_t, FaultSmallTraits> q(
      WfConfig{/*patience=*/10, /*max_garbage=*/1 << 20, /*reserve=*/0});
  prime_alloc_failures(1u << 20);

  auto h = q.get_handle();
  for (std::uint64_t i = 1; i <= kSeg; ++i) {
    ASSERT_TRUE(q.enqueue(h, i));
  }
  EXPECT_FALSE(q.enqueue(h, 999));  // enqueue reports failure by value
  for (std::uint64_t i = 1; i <= kSeg; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  // dequeue's only failure channel besides EMPTY is the exception; it must
  // be the catchable bad_alloc subtype, and it must be retryable.
  EXPECT_THROW((void)q.dequeue(h), SegmentAllocError);
  Inj::reset();
  EXPECT_FALSE(q.dequeue(h).has_value());
}

}  // namespace
}  // namespace wfq
