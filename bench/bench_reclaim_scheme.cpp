// Ablation E: reclamation-scheme overhead, the measurable counterpart of
// §3.6 "Overhead": "on x86 systems, our memory reclamation scheme adds
// almost no overhead to the fast-path execution, which is unprecedented
// among memory reclamation schemes for lock-free data structures."
//
// Since the segment layer grew pluggable reclamation policies, the claim
// is tested the way it is stated: the SAME wait-free queue runs under the
// paper's scheme (no fast-path fence), classic hazard pointers (one
// seq_cst publish + revalidate per op), and classic epochs (one seq_cst
// pin per op), plus a reclamation-disabled reference point and the
// MS-Queue+HP/EBR pairings the paper itself shipped. A second table
// reports each policy's peak live segment count on the same runs — the
// memory-bound axis that wCQ (Nikolaev & Ravindran, 2022) optimizes.
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "memory/reclaimer.hpp"

namespace wfq::bench {
namespace {

struct HpPolicyTraits : DefaultWfTraits {
  template <class SL>
  using Reclaim = HpReclaim<SL>;
};

struct EpochPolicyTraits : DefaultWfTraits {
  template <class SL>
  using Reclaim = EpochReclaim<SL>;
};

/// A contender that additionally records the max peak-live-segment count
/// observed across its invocations (reset per thread-count row).
struct ReclaimContender {
  std::string name;
  std::function<std::function<double()>(const RunConfig&)> make_invocation;
  std::shared_ptr<std::size_t> peak_segments;  // null: not segment-backed
};

template <class Traits>
ReclaimContender make_policy_contender(std::string name, WfConfig wf) {
  auto peak = std::make_shared<std::size_t>(0);
  return {std::move(name),
          [wf, peak](const RunConfig& cfg) {
            auto q = std::make_shared<WFQueue<uint64_t, Traits>>(wf);
            return std::function<double()>([q, cfg, peak] {
              double mops = run_workload(*q, cfg).mops_raw();
              *peak = std::max(*peak, q->peak_live_segments());
              return mops;
            });
          },
          peak};
}

template <class Queue>
ReclaimContender make_plain_contender(std::string name) {
  return {std::move(name),
          [](const RunConfig& cfg) {
            auto q = std::make_shared<Queue>();
            return std::function<double()>(
                [q, cfg] { return run_workload(*q, cfg).mops_raw(); });
          },
          nullptr};
}

std::vector<ReclaimContender> make_contenders() {
  WfConfig wf_on;
  wf_on.patience = 10;
  WfConfig wf_off = wf_on;
  wf_off.max_garbage = int64_t{1} << 60;  // reclamation never triggers

  std::vector<ReclaimContender> cs;
  cs.push_back(
      make_policy_contender<DefaultWfTraits>("WF paper-hzdp", wf_on));
  cs.push_back(make_policy_contender<HpPolicyTraits>("WF hp", wf_on));
  cs.push_back(make_policy_contender<EpochPolicyTraits>("WF epoch", wf_on));
  cs.push_back(
      make_policy_contender<DefaultWfTraits>("WF no-reclaim", wf_off));
  cs.push_back(make_plain_contender<baselines::MSQueue<uint64_t, HpReclaimer<2>>>(
      "MSQ+HP"));
  cs.push_back(
      make_plain_contender<baselines::MSQueue<uint64_t, EbrReclaimer<2>>>(
          "MSQ+EBR"));
  return cs;
}

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  auto threads = thread_counts_from_env();
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();

  std::cout
      << "== Ablation E: reclamation-scheme overhead (pairs) ==\n"
         "One wait-free queue, three reclamation policies: paper-hzdp has "
         "no fast-path fence\n(§3.6 claims ~zero overhead); hp pays a "
         "seq_cst publish+revalidate per op; epoch\npays a seq_cst pin per "
         "op. WF no-reclaim is the no-cost reference; MSQ rows are\nthe "
         "classic pairings on a different structure.\n\n";
  std::vector<std::string> headers{"threads"};
  auto naming = make_contenders();
  for (auto& c : naming) headers.push_back(c.name + " Mops/s");
  Table table(headers);

  std::vector<std::string> peak_headers{"threads"};
  for (auto& c : naming) {
    if (c.peak_segments) peak_headers.push_back(c.name + " peak segs");
  }
  Table peak_table(peak_headers);

  for (unsigned t : threads) {
    // Fresh contenders per row so peak-live counters are per thread count.
    auto contenders = make_contenders();
    RunConfig cfg;
    cfg.kind = WorkloadKind::kPairs;
    cfg.threads = t;
    cfg.total_ops = ops;
    cfg.use_delay = use_delay;
    std::vector<std::string> row{std::to_string(t) + (t > hw ? "^" : "")};
    std::vector<std::string> peak_row{row[0]};
    for (auto& c : contenders) {
      auto ci = measure(mcfg, [&] { return c.make_invocation(cfg); });
      row.push_back(Table::fmt_ci(ci.mean, ci.half_width));
      if (c.peak_segments) {
        peak_row.push_back(std::to_string(*c.peak_segments));
      }
      std::cerr << "  [reclaim-scheme] threads=" << t << " " << c.name
                << ": " << Table::fmt_ci(ci.mean, ci.half_width)
                << (c.peak_segments
                        ? "  peak_segs=" + std::to_string(*c.peak_segments)
                        : "")
                << "\n";
    }
    table.add_row(std::move(row));
    peak_table.add_row(std::move(peak_row));
  }
  table.print();
  std::cout << "\nPeak live segments (max over invocations; lower = tighter "
               "memory bound;\nepoch additionally parks detached segments "
               "in domain limbo until two\nepoch advances):\n\n";
  peak_table.print();
  return 0;
}
