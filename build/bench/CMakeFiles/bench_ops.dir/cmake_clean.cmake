file(REMOVE_RECURSE
  "CMakeFiles/bench_ops.dir/bench_ops.cpp.o"
  "CMakeFiles/bench_ops.dir/bench_ops.cpp.o.d"
  "bench_ops"
  "bench_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
