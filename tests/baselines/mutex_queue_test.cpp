// Tests for the mutex-guarded sanity baseline.
#include "baselines/mutex_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "support/queue_test_util.hpp"

namespace wfq::baselines {
namespace {

TEST(MutexQueue, StartsEmpty) {
  MutexQueue<uint64_t> q;
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
  EXPECT_EQ(q.size(), 0u);
}

TEST(MutexQueue, SequentialFifo) {
  MutexQueue<uint64_t> q;
  test::run_sequential_fifo(q, 5000);
}

TEST(MutexQueue, SizeTracksContents) {
  MutexQueue<uint64_t> q;
  auto h = q.get_handle();
  for (int i = 0; i < 10; ++i) q.enqueue(h, i + 1);
  EXPECT_EQ(q.size(), 10u);
  (void)q.dequeue(h);
  EXPECT_EQ(q.size(), 9u);
}

TEST(MutexQueue, BoxedPayloads) {
  MutexQueue<std::string> q;
  auto h = q.get_handle();
  q.enqueue(h, "alpha");
  EXPECT_EQ(q.dequeue(h), "alpha");
}

TEST(MutexQueue, MpmcProperty) {
  MutexQueue<uint64_t> q;
  test::run_mpmc_property(q, 4, 4, 4000);
}

TEST(MutexQueue, PairsConservation) {
  MutexQueue<uint64_t> q;
  test::run_pairs_conservation(q, 8, 3000);
}

}  // namespace
}  // namespace wfq::baselines
