/* The single source of truth for the queue's operation counters.
 *
 * Every counter the stack maintains is declared exactly once, here, as an
 * X-macro entry. Three consumers expand the table:
 *
 *   - src/core/op_stats.hpp  -> the OpStats struct (atomic fields, add(),
 *                               reset(), for_each_field, kFieldCount)
 *   - src/capi/wfq_c.h       -> the wfq_stats_ex_t C struct (one uint64_t
 *                               per counter, same names, same order)
 *   - src/capi/wfq_c.cpp     -> the OpStats -> wfq_stats_ex_t copy and the
 *                               static_asserts that keep all three in sync
 *
 * Adding a counter is ONE edit in this file; forgetting any consumer is a
 * compile error, not a silently-zero stat (the PR-2..4 counters drifted out
 * of wfq_stats_t exactly because the old field lists were hand-maintained).
 *
 * Two kinds of entry:
 *   F(name)  -- monotonic counter; aggregated across handles by addition.
 *   M(name)  -- high-water mark; aggregated by an atomic CAS-max.
 *
 * This header must stay C89-clean: wfq_c.h includes it.
 */
#ifndef WFQ_STATS_FIELDS_H_
#define WFQ_STATS_FIELDS_H_

#define WFQ_STATS_FIELDS(F, M)                                               \
  /* Operation paths (the paper's Table 2). */                               \
  F(enq_fast)          /* enqueues completed on the fast path */             \
  F(enq_slow)          /* enqueues that fell back to enq_slow */             \
  F(deq_fast)          /* dequeues completed on the fast path */             \
  F(deq_slow)          /* dequeues that fell back to deq_slow */             \
  F(deq_empty)         /* dequeues that returned EMPTY */                    \
  F(cleanups)          /* cleanup() passes that reclaimed */                 \
  F(segments_freed)    /* segments returned to the OS */                     \
  /* Batched operations (PR 2). *_bulk_batches counts calls; *_bulk_fast */  \
  /* counts items completed on a prepaid ticket (one shared FAA). Items */   \
  /* that fell back to per-item ops are counted by the fields above. */      \
  F(enq_bulk_batches)  /* enqueue_bulk calls */                              \
  F(enq_bulk_fast)     /* items deposited via tickets */                     \
  F(deq_bulk_batches)  /* dequeue_bulk calls */                              \
  F(deq_bulk_fast)     /* items claimed via tickets */                       \
  /* Blocking layer (PR 3, src/sync/blocking_queue.hpp). notify_calls */     \
  /* counts futex wakes actually issued by producers -- the zero-fence */    \
  /* claim of ALGORITHM.md section 10 is testable as "no-waiter workloads */ \
  /* report notify_calls == 0". */                                           \
  /* A spurious wakeup is a park that ended with neither a notify nor a */   \
  /* timeout (EINTR on the futex backends) -- classified from the wake */    \
  /* syscall's own result since PR 10, so the counter agrees exactly */      \
  /* with the trace ring's park/wake events (tools/soak.cpp audits it). */   \
  F(deq_parks)             /* consumer futex sleeps */                       \
  F(deq_spurious_wakeups)  /* consumer parks ended by neither notify */      \
                           /* nor timeout */                                 \
  F(notify_calls)          /* producer-side futex wakes issued */            \
  /* Robustness layer (PR 4: fault injection, orphan adoption, OOM seam). */ \
  /* The injected_* pair is nonzero only under a ScriptedInjector. */        \
  F(injected_stalls)   /* scripted stall actions performed */                \
  F(injected_crashes)  /* scripted crash actions performed */                \
  F(adopted_handles)   /* abandoned handles whose op was finished */         \
  F(orphan_drops)      /* values dropped completing adopted deqs */          \
  F(alloc_failures)    /* segment allocations that failed cleanly */         \
  F(reserve_pool_hits) /* allocations served by the reserve pool */          \
  F(oom_rescues)       /* deposits retracted from debt-parked cells and */   \
                       /* re-enqueued (conservation under OOM) */            \
  /* Bounded backends (PR 6: SCQ/wCQ rings + the BoundedQueue contract). */  \
  /* enq_full counts try_enqueue attempts that observed a full queue; */     \
  /* push_full_parks counts producers that slept on it (BlockingQueue's */   \
  /* push_wait, the producer-side mirror of deq_parks). */                   \
  F(enq_full)          /* try_enqueue returned kFull */                      \
  F(push_full_parks)   /* producer futex sleeps on a full queue */           \
  F(push_spurious_wakeups) /* producer parks ended by neither notify */      \
                           /* nor timeout (mirror of the deq counter) */     \
  /* Adaptive fast-path tuning (PR 7, src/core/adaptive.hpp). Nonzero */     \
  /* only with WfConfig::patience_mode == kAdaptive: the per-handle */       \
  /* PATIENCE controller's epoch-boundary decisions, and the high-water */   \
  /* mark of the adaptive dequeue_bulk reservation size. */                  \
  F(patience_raises)   /* adaptive PATIENCE doublings */                     \
  F(patience_drops)    /* adaptive PATIENCE halvings */                      \
  M(bulk_k_current)    /* largest adaptive bulk-k reservation used */        \
  /* Sharded layer (PR 8, src/scale/sharded_queue.hpp). A steal attempt */  \
  /* is one foreign-lane probe during the dequeue sweep; a steal is a */     \
  /* probe that returned a value. Zero on every single-queue backend. */     \
  F(steal_attempts)    /* foreign-lane dequeue probes */                     \
  F(steals)            /* foreign-lane probes that won a value */            \
  /* Cross-process shm layer (PR 9, src/ipc/shm_queue.hpp). Zero on */       \
  /* every in-process backend. peer_deaths counts dead attached */           \
  /* processes detected and reclaimed by recover(); shm_adoptions the */     \
  /* half-finished operations of dead peers a survivor drove to a */         \
  /* resolved state (poisoned an undeposited cell, rescued a stranded */     \
  /* value into the redelivery ring). */                                     \
  F(peer_deaths)       /* dead attached processes reclaimed */               \
  F(shm_adoptions)     /* dead peers' in-flight ops resolved */              \
  /* Empirical wait-freedom bound (section 4): cells probed (find_cell */    \
  /* calls) per operation. Wait-freedom means max probes stays bounded */    \
  /* by a function of the thread count, never by the run length. */          \
  F(enq_probes)        /* total probes across enqueues */                    \
  F(deq_probes)        /* total probes across dequeues */                    \
  M(max_enq_probes)    /* worst single enqueue */                            \
  M(max_deq_probes)    /* worst single dequeue */

#endif /* WFQ_STATS_FIELDS_H_ */
