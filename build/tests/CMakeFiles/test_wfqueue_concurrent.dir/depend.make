# Empty dependencies file for test_wfqueue_concurrent.
# This may be replaced when dependencies are built.
