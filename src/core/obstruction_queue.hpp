// The paper's Listing 1: the obstruction-free FAA queue over an "infinite"
// array — realized, like the wait-free queue that hardens it, over the
// shared segment layer (core/segment_list.hpp) with pluggable reclamation
// (memory/segment_reclaim.hpp). It is pedagogically useful, serves as a
// differential-testing oracle at small scales, and demonstrates the
// livelock the paper describes (an enqueuer and dequeuer can starve each
// other, which the wait-free construction eliminates).
//
// Listing 1 itself has no per-thread state; the Handle here exists for the
// segment layer (thread-local segment pointers, reclamation-policy state),
// not for the algorithm. Consumed segments are reclaimed by the configured
// policy instead of leaking, so the queue sustains unbounded operation
// counts in bounded memory — unless an index capacity is set, in which
// case enqueue/dequeue throw std::length_error once the index space is
// exhausted (capacity is consumed by *indices*, not live values: every
// enqueue and every dequeue burns at least one cell).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/segment_queue_base.hpp"
#include "core/slot_codec.hpp"
#include "core/wf_queue_core.hpp"

namespace wfq {

/// One Listing-1 cell: just a value slot (no request pointers — Listing 1
/// has no helping). `reset()` is the SegmentList pool-recycling hook.
struct ObsCell {
  std::atomic<uint64_t> val{kSlotBot};

  void reset() { val.store(kSlotBot, std::memory_order_relaxed); }
};

template <class T, class Traits = DefaultWfTraits>
class ObstructionQueue : private SegmentQueueBase<ObsCell, Traits> {
  using Base = SegmentQueueBase<ObsCell, Traits>;
  using Codec = SlotCodec<T>;
  using typename Base::Segment;
  static constexpr uint64_t kBot = kSlotBot;
  static constexpr uint64_t kTop = kSlotTop;

 public:
  using value_type = T;
  using Handle = typename Base::HandleGuard;

  /// `capacity` bounds the *index space* (0 = unbounded, the default: the
  /// reclamation policy keeps memory bounded instead). `max_garbage` is
  /// the reclamation threshold, as in WfConfig.
  explicit ObstructionQueue(std::size_t capacity = 0, int64_t max_garbage = 64)
      : Base(max_garbage), capacity_(capacity) {}

  ~ObstructionQueue() {
    if constexpr (Codec::kBoxed) {
      // Free still-boxed payloads: exactly the cells in [H, T) holding a
      // value. Cells below H were consumed (their slot words are stale) and
      // cells at or above T are untouched. Reclaimed segments hold only
      // consumed indices, so walking the live list covers [H, T).
      const uint64_t h = head_->load(std::memory_order_relaxed);
      const uint64_t t = tail_->load(std::memory_order_relaxed);
      for (Segment* s = this->segs_.first(std::memory_order_relaxed);
           s != nullptr; s = s->next.load(std::memory_order_relaxed)) {
        for (std::size_t j = 0; j < Base::kSegmentSize; ++j) {
          const uint64_t idx = uint64_t(s->id) * Base::kSegmentSize + j;
          if (idx < h || idx >= t) continue;
          uint64_t v = s->cells[j].val.load(std::memory_order_relaxed);
          if (v != kBot && v != kTop) Codec::destroy_slot(v);
        }
      }
    }
  }

  Handle get_handle() { return Handle(*this); }

  /// Listing 1 enqueue: FAA an index, CAS the value in; retry on a cell a
  /// dequeuer already marked unusable. Obstruction-free, not wait-free.
  void enqueue(Handle& h, T v) {
    uint64_t slot = Codec::encode(std::move(v));
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->tail);
    for (;;) {
      uint64_t t = tail_->fetch_add(1, std::memory_order_seq_cst);
      if (capacity_ != 0 && t >= capacity_) {
        this->rcl_.end_op(hp);
        Codec::destroy_slot(slot);
        throw std::length_error("ObstructionQueue index space exhausted");
      }
      ObsCell* c = this->cell_at(hp, hp->tail, t, "obs_enq");
      uint64_t expected = kBot;
      if (c->val.compare_exchange_strong(expected, slot,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
        this->rcl_.end_op(hp);
        return;
      }
    }
  }

  /// Listing 1 dequeue: FAA an index; mark the cell unusable; a failure to
  /// mark means a value is present. EMPTY when the head catches the tail.
  std::optional<T> dequeue(Handle& h) {
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->head);
    for (;;) {
      uint64_t i = head_->fetch_add(1, std::memory_order_seq_cst);
      if (capacity_ != 0 && i >= capacity_) {
        this->rcl_.end_op(hp);
        throw std::length_error("ObstructionQueue index space exhausted");
      }
      ObsCell* c = this->cell_at(hp, hp->head, i, "obs_deq");
      uint64_t expected = kBot;
      if (!c->val.compare_exchange_strong(expected, kTop,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
        // Cell already holds a value (CAS failed on non-⊥): take it.
        this->rcl_.end_op(hp);
        this->poll_reclaim(hp, *head_, *tail_);
        return Codec::decode(expected);
      }
      if (tail_->load(std::memory_order_seq_cst) <= i) {
        this->rcl_.end_op(hp);
        this->poll_reclaim(hp, *head_, *tail_);
        return std::nullopt;  // no enqueue has claimed index i: empty
      }
      // Otherwise an enqueue is in flight at or past i; try the next cell.
    }
  }

  /// Bulk enqueue (comparison implementation for bench_bulk): one FAA
  /// reserves `count` consecutive cells, values are CAS-deposited in cell
  /// order; a value whose cell a dequeuer already marked unusable retries
  /// through the ordinary per-item enqueue (whose FAAs land past the
  /// batch, preserving array order). Obstruction-free like the base ops.
  void enqueue_bulk(Handle& h, const T* vals, std::size_t count) {
    if (count == 0) return;
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->tail);
    uint64_t base = tail_->fetch_add(count, std::memory_order_seq_cst);
    // Tickets beyond a configured capacity are unusable; the values they
    // would have carried go through the residual per-item path (throws).
    const std::size_t usable =
        capacity_ == 0 ? count
                       : std::size_t(std::min<uint64_t>(
                             count, capacity_ > base ? capacity_ - base : 0));
    std::size_t committed = 0;
    ObsCell* cells[kChunk];
    for (std::size_t ticket = 0; ticket < usable && committed < usable;) {
      const std::size_t take = std::min(usable - ticket, kChunk);
      this->cells_at(hp, hp->tail, base + ticket, take, cells, "obs_enq_bulk");
      for (std::size_t j = 0; j < take && committed < usable; ++j) {
        uint64_t slot = Codec::encode(T(vals[committed]));
        uint64_t expected = kBot;
        if (cells[j]->val.compare_exchange_strong(expected, slot,
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
          ++committed;
        } else {
          Codec::destroy_slot(slot);
        }
      }
      ticket += take;
    }
    this->rcl_.end_op(hp);
    // Residual values (stolen tickets, or tickets beyond a configured
    // capacity): ordinary per-item enqueues, which throw on exhaustion.
    for (; committed < count; ++committed) enqueue(h, T(vals[committed]));
  }

  /// Bulk dequeue: one FAA reserves `count` cells; every reserved cell is
  /// either drained (CAS-to-⊤ failed: a value was present) or sealed.
  /// Returns values claimed; fewer than `count` only after the tail was
  /// observed at or behind a sealed cell (queue seen empty).
  std::size_t dequeue_bulk(Handle& h, T* out, std::size_t count) {
    if (count == 0) return 0;
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->head);
    uint64_t base = head_->fetch_add(count, std::memory_order_seq_cst);
    std::size_t got = 0;
    bool saw_empty = false;
    ObsCell* cells[kChunk];
    for (std::size_t ticket = 0; ticket < count; ticket += kChunk) {
      const std::size_t take = std::min(count - ticket, kChunk);
      this->cells_at(hp, hp->head, base + ticket, take, cells, "obs_deq_bulk");
      for (std::size_t j = 0; j < take; ++j) {
        const uint64_t i = base + ticket + j;
        if (capacity_ != 0 && i >= capacity_) {
          saw_empty = true;  // index space exhausted: stop topping up
          continue;
        }
        uint64_t expected = kBot;
        if (!cells[j]->val.compare_exchange_strong(expected, kTop,
                                                   std::memory_order_seq_cst,
                                                   std::memory_order_relaxed)) {
          out[got++] = Codec::decode(expected);
        } else if (tail_->load(std::memory_order_seq_cst) <= i) {
          saw_empty = true;
        }
        // else: an enqueue was in flight at or past i; ticket wasted.
      }
    }
    this->rcl_.end_op(hp);
    this->poll_reclaim(hp, *head_, *tail_);
    while (!saw_empty && got < count) {
      std::optional<T> v = dequeue(h);
      if (!v) break;
      out[got++] = *std::move(v);
    }
    return got;
  }

  uint64_t head_index() const {
    return head_->load(std::memory_order_acquire);
  }
  uint64_t tail_index() const {
    return tail_->load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return capacity_; }

  using Base::live_segments;
  using Base::peak_live_segments;
  using Base::reclaimer;
  using Base::segments_outstanding;

 private:
  static constexpr std::size_t kChunk = 64;

  CacheAligned<std::atomic<uint64_t>> tail_{0};  // T
  CacheAligned<std::atomic<uint64_t>> head_{0};  // H
  std::size_t capacity_;
};

}  // namespace wfq
