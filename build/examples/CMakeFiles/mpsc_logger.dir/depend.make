# Empty dependencies file for mpsc_logger.
# This may be replaced when dependencies are built.
