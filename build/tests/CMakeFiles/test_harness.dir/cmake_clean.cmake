file(REMOVE_RECURSE
  "CMakeFiles/test_harness.dir/harness/barrier_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/barrier_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/chart_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/chart_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/latency_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/latency_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/methodology_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/methodology_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/platform_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/platform_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/stats_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/stats_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/table_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/table_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/workload_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/workload_test.cpp.o.d"
  "test_harness"
  "test_harness.pdb"
  "test_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
