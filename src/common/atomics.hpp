// Atomic-primitive substrate: the FAA / CAS / CAS2 vocabulary of the paper
// (§3.1 "Atomic primitives") expressed over std::atomic, plus the
// LL/SC-emulated FAA used to reproduce the paper's Power7 results and a
// spin-wait hint / bounded exponential backoff.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace wfq {

/// CPU pause/yield hint for spin loops. Reduces pipeline flush cost on x86
/// and power draw on SMT siblings; a compiler barrier elsewhere.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded exponential backoff for retry loops in the *baseline* queues.
/// (The wait-free queue itself never needs unbounded retries, which is the
/// point of the paper; backoff appears only on baselines' CAS-retry paths.)
class Backoff {
 public:
  explicit Backoff(unsigned max_spins = 1024) noexcept : max_(max_spins) {}

  void pause() noexcept {
    for (unsigned i = 0; i < cur_; ++i) cpu_pause();
    if (cur_ < max_) cur_ *= 2;
  }

  void reset() noexcept { cur_ = 1; }

 private:
  unsigned cur_ = 1;
  unsigned max_;
};

/// Native fetch-and-add: one hardware `lock xadd` (x86) / LDADD (ARMv8.1).
/// This is the primitive whose throughput the paper's FAA microbenchmark
/// upper-bounds.
struct NativeFaa {
  /// Unconditional hardware FAA; never fails, so wait-free.
  static constexpr bool kWaitFree = true;
  static constexpr const char* kName = "native-faa";

  static int64_t fetch_add(std::atomic<int64_t>& a, int64_t v,
                           std::memory_order mo) noexcept {
    return a.fetch_add(v, mo);
  }
  static uint64_t fetch_add(std::atomic<uint64_t>& a, uint64_t v,
                            std::memory_order mo) noexcept {
    return a.fetch_add(v, mo);
  }
};

/// FAA emulated by a CAS retry loop, mirroring the paper's Power7 setup
/// where FAA is synthesized from load-linked/store-conditional. Using this
/// policy sacrifices the queue's wait-freedom (the retry loop is unbounded),
/// exactly as §3.1 and §5 describe; it exists to reproduce the Power7 series
/// of Figure 2 on hardware that *does* have native FAA.
struct EmulatedFaa {
  static constexpr bool kWaitFree = false;
  static constexpr const char* kName = "llsc-emulated-faa";

  template <class I>
  static I fetch_add_impl(std::atomic<I>& a, I v, std::memory_order mo) noexcept {
    I cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, mo,
                                    std::memory_order_relaxed)) {
      cpu_pause();
    }
    return cur;
  }

  static int64_t fetch_add(std::atomic<int64_t>& a, int64_t v,
                           std::memory_order mo) noexcept {
    return fetch_add_impl(a, v, mo);
  }
  static uint64_t fetch_add(std::atomic<uint64_t>& a, uint64_t v,
                            std::memory_order mo) noexcept {
    return fetch_add_impl(a, v, mo);
  }
};

/// Strong CAS that returns whether the swap happened, discarding the
/// witness: matches the paper's `CAS(a, t, v)` notation.
template <class T>
inline bool cas(std::atomic<T>& a, T expected, T desired,
                std::memory_order success = std::memory_order_seq_cst,
                std::memory_order failure = std::memory_order_seq_cst) noexcept {
  return a.compare_exchange_strong(expected, desired, success, failure);
}

/// Strong CAS that exposes the witness value through `expected`, for
/// call sites that need the observed value on failure.
template <class T>
inline bool cas_witness(std::atomic<T>& a, T& expected, T desired,
                        std::memory_order success = std::memory_order_seq_cst,
                        std::memory_order failure = std::memory_order_seq_cst) noexcept {
  return a.compare_exchange_strong(expected, desired, success, failure);
}

// ---------------------------------------------------------------------------
// Double-width CAS (CAS2) — required by LCRQ (§2: "LCRQ uses FAA to acquire
// an index on a CRQ and then uses a double-width compare-and-swap").
// ---------------------------------------------------------------------------

/// A 16-byte, 16-byte-aligned pair of 64-bit words manipulated atomically.
struct alignas(16) U128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const U128& a, const U128& b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

#if defined(WFQ_HAVE_CX16)
inline constexpr bool kHaveNativeCas2 = true;

/// Hardware cmpxchg16b. Full-fence semantics (x86 RMW).
inline bool cas2(U128* addr, U128 expected, U128 desired) noexcept {
  auto pack = [](U128 v) {
    return static_cast<__uint128_t>(v.hi) << 64 | v.lo;
  };
  return __sync_bool_compare_and_swap(reinterpret_cast<__uint128_t*>(addr),
                                      pack(expected), pack(desired));
}

/// Atomic 16-byte load. On x86-64 a plain 16B load is not guaranteed atomic;
/// a CAS2 with equal expected/desired performs an atomic read-don't-modify.
inline U128 load2(U128* addr) noexcept {
  auto* p = reinterpret_cast<__uint128_t*>(addr);
  __uint128_t v = __sync_val_compare_and_swap(p, __uint128_t{0}, __uint128_t{0});
  return U128{static_cast<uint64_t>(v), static_cast<uint64_t>(v >> 64)};
}
#else
inline constexpr bool kHaveNativeCas2 = false;

namespace detail {
// Lock-table emulation for platforms without cmpxchg16b, analogous to how
// the paper notes CAS2 "is not universally available". Keeps LCRQ runnable
// (and testable) everywhere, at the cost of lock-freedom of the baseline.
inline std::atomic_flag& cas2_lock(const void* addr) noexcept {
  static std::atomic_flag locks[64];
  auto h = reinterpret_cast<uintptr_t>(addr);
  return locks[(h >> 4) & 63];
}
}  // namespace detail

inline bool cas2(U128* addr, U128 expected, U128 desired) noexcept {
  auto& l = detail::cas2_lock(addr);
  while (l.test_and_set(std::memory_order_acquire)) cpu_pause();
  bool ok = (*addr == expected);
  if (ok) *addr = desired;
  l.clear(std::memory_order_release);
  return ok;
}

inline U128 load2(U128* addr) noexcept {
  auto& l = detail::cas2_lock(addr);
  while (l.test_and_set(std::memory_order_acquire)) cpu_pause();
  U128 v = *addr;
  l.clear(std::memory_order_release);
  return v;
}
#endif

}  // namespace wfq
