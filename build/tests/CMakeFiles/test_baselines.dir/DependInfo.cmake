
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/ccqueue_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/ccqueue_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/ccqueue_test.cpp.o.d"
  "/root/repo/tests/baselines/faaq_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/faaq_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/faaq_test.cpp.o.d"
  "/root/repo/tests/baselines/kp_queue_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/kp_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/kp_queue_test.cpp.o.d"
  "/root/repo/tests/baselines/lcrq_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/lcrq_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/lcrq_test.cpp.o.d"
  "/root/repo/tests/baselines/ms_queue_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/ms_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/ms_queue_test.cpp.o.d"
  "/root/repo/tests/baselines/mutex_queue_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/mutex_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/mutex_queue_test.cpp.o.d"
  "/root/repo/tests/baselines/obstruction_queue_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/obstruction_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/obstruction_queue_test.cpp.o.d"
  "/root/repo/tests/baselines/sim_queue_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/sim_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/sim_queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfq_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
