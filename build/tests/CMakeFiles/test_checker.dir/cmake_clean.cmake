file(REMOVE_RECURSE
  "CMakeFiles/test_checker.dir/checker/cross_validation_test.cpp.o"
  "CMakeFiles/test_checker.dir/checker/cross_validation_test.cpp.o.d"
  "CMakeFiles/test_checker.dir/checker/history_test.cpp.o"
  "CMakeFiles/test_checker.dir/checker/history_test.cpp.o.d"
  "CMakeFiles/test_checker.dir/checker/queue_checker_test.cpp.o"
  "CMakeFiles/test_checker.dir/checker/queue_checker_test.cpp.o.d"
  "test_checker"
  "test_checker.pdb"
  "test_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
