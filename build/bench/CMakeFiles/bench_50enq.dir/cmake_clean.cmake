file(REMOVE_RECURSE
  "CMakeFiles/bench_50enq.dir/bench_50enq.cpp.o"
  "CMakeFiles/bench_50enq.dir/bench_50enq.cpp.o.d"
  "bench_50enq"
  "bench_50enq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_50enq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
