// Bounded-backend contract through BlockingQueue (src/sync/blocking_queue.hpp
// over src/core/scq.hpp and src/core/wcq.hpp): push_status -> kFull at
// capacity, push_wait parking until a consumer frees space, push_wait_for's
// timeout-vs-freed-space race, close() waking parked producers, and
// capacity-exact MPMC conservation where every producer spends most of the
// run parked on a full ring.
//
// Ring precondition everywhere below: capacity >= the number of threads
// operating concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "checker/queue_checker.hpp"
#include "sync/blocking_queue.hpp"

namespace wfq {
namespace {

using sync::BlockingScqQueue;
using sync::BlockingWcqQueue;
using sync::PopStatus;
using sync::PushStatus;
using sync::WaitPolicy;

template <class Q>
class BoundedBlockingTest : public ::testing::Test {};

using BoundedQueues =
    ::testing::Types<BlockingScqQueue<uint64_t>, BlockingWcqQueue<uint64_t>>;
TYPED_TEST_SUITE(BoundedBlockingTest, BoundedQueues);

TYPED_TEST(BoundedBlockingTest, PushStatusReportsFullAtCapacity) {
  TypeParam q(8);
  ASSERT_EQ(q.capacity(), 8u);
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_EQ(q.push_status(h, i), PushStatus::kOk) << "i=" << i;
  }
  // At capacity: kFull, repeatably, with nothing consumed or lost.
  EXPECT_EQ(q.push_status(h, 100), PushStatus::kFull);
  EXPECT_EQ(q.push_status(h, 100), PushStatus::kFull);
  EXPECT_FALSE(q.push(h, 100));
  // One slot freed -> next push succeeds; FIFO order intact.
  EXPECT_EQ(q.try_pop(h).value(), 1u);
  EXPECT_EQ(q.push_status(h, 100), PushStatus::kOk);
  for (uint64_t i = 2; i <= 8; ++i) EXPECT_EQ(q.try_pop(h).value(), i);
  EXPECT_EQ(q.try_pop(h).value(), 100u);
  EXPECT_FALSE(q.try_pop(h).has_value());
}

TYPED_TEST(BoundedBlockingTest, PushWaitParksUntilConsumerFreesSpace) {
  TypeParam q(8);
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 8; ++i) ASSERT_TRUE(q.push(h, i));
  std::thread producer([&] {
    auto ph = q.get_handle();
    EXPECT_EQ(q.push_wait(ph, 999, WaitPolicy::park_only()), PushStatus::kOk);
  });
  // Wait until the producer has actually registered as a space waiter (it
  // cannot proceed: the ring is full), then free one slot.
  while (q.space_waiters() == 0) std::this_thread::yield();
  EXPECT_EQ(q.try_pop(h).value(), 1u);
  producer.join();
  auto s = q.stats();
  EXPECT_GE(s.push_full_parks.load(), 1u);  // it really parked
  // FIFO: the parked push landed after everything already in the ring.
  for (uint64_t i = 2; i <= 8; ++i) EXPECT_EQ(q.try_pop(h).value(), i);
  EXPECT_EQ(q.try_pop(h).value(), 999u);
}

TYPED_TEST(BoundedBlockingTest, PushWaitForTimesOutOnFullQueue) {
  TypeParam q(8);
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 8; ++i) ASSERT_TRUE(q.push(h, i));
  auto t0 = sync::WaitClock::now();
  EXPECT_EQ(q.push_wait_for(h, 999, std::chrono::milliseconds(10),
                            WaitPolicy::park_only()),
            PushStatus::kTimeout);
  EXPECT_GE(sync::WaitClock::now() - t0, std::chrono::milliseconds(5));
  // Nothing was enqueued by the timed-out push.
  for (uint64_t i = 1; i <= 8; ++i) EXPECT_EQ(q.try_pop(h).value(), i);
  EXPECT_FALSE(q.try_pop(h).has_value());
}

// The producer mirror of ExpiredDeadlineStillDeliversDepositedValue: space
// that frees "simultaneously" with the deadline must be used, not wasted —
// push_wait_for runs one final attempt after observing the deadline.
TYPED_TEST(BoundedBlockingTest, ExpiredDeadlineStillUsesFreedSpace) {
  TypeParam q(8);
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 7; ++i) ASSERT_TRUE(q.push(h, i));
  EXPECT_EQ(q.push_wait_for(h, 8, std::chrono::nanoseconds(0)),
            PushStatus::kOk);
}

TYPED_TEST(BoundedBlockingTest, CloseWakesParkedProducer) {
  TypeParam q(8);
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 8; ++i) ASSERT_TRUE(q.push(h, i));
  std::thread producer([&] {
    auto ph = q.get_handle();
    EXPECT_EQ(q.push_wait(ph, 999, WaitPolicy::park_only()),
              PushStatus::kClosed);
  });
  while (q.space_waiters() == 0) std::this_thread::yield();
  q.close();
  producer.join();  // a stranded parked producer hangs here
  EXPECT_EQ(q.space_waiters(), 0u);
  // Residue (everything accepted before close) still drains, then kClosed.
  uint64_t v = 0;
  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_EQ(q.pop_wait(h, v), PopStatus::kOk);
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.pop_wait(h, v), PopStatus::kClosed);
}

// Capacity-exact MPMC conservation: ring capacity equals the thread count,
// so producers park on full and consumers park on empty throughout. Every
// accepted push must come out exactly once before kClosed.
TYPED_TEST(BoundedBlockingTest, CapacityExactMpmcNoLoss) {
  constexpr unsigned kProducers = 2, kConsumers = 2;
  constexpr uint64_t kOpsPerProducer = 5000;
  TypeParam q(kProducers + kConsumers);
  std::atomic<uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<uint64_t> pushed_n{0}, popped_n{0};
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.get_handle();
      uint64_t local_sum = 0;
      for (uint64_t i = 1; i <= kOpsPerProducer; ++i) {
        uint64_t v = (uint64_t(p + 1) << 40) | i;
        ASSERT_EQ(q.push_wait(h, v), PushStatus::kOk);
        local_sum += v;
      }
      pushed_sum.fetch_add(local_sum);
      pushed_n.fetch_add(kOpsPerProducer);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      auto h = q.get_handle();
      uint64_t local_sum = 0, local_n = 0, v = 0;
      while (q.pop_wait(h, v) == PopStatus::kOk) {
        local_sum += v;
        ++local_n;
      }
      popped_sum.fetch_add(local_sum);
      popped_n.fetch_add(local_n);
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (unsigned c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  EXPECT_EQ(pushed_n.load(), kProducers * kOpsPerProducer);
  EXPECT_EQ(popped_n.load(), pushed_n.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

// close() racing a parked push_wait: whatever the interleaving, a push that
// reported kOk must drain out, and a push that reported kClosed must not.
TYPED_TEST(BoundedBlockingTest, PushWaitCloseRaceNeverLosesAcceptedValue) {
  constexpr int kRounds = 100;
  for (int r = 0; r < kRounds; ++r) {
    TypeParam q(4);
    auto h = q.get_handle();
    for (uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(q.push(h, i));
    std::atomic<int> accepted{-1};
    std::thread producer([&] {
      auto ph = q.get_handle();
      PushStatus st = q.push_wait(ph, 999, WaitPolicy::park_only());
      accepted.store(st == PushStatus::kOk ? 1 : 0);
    });
    std::thread racer([&] {
      auto rh = q.get_handle();
      std::this_thread::sleep_for(std::chrono::microseconds(r % 30));
      (void)q.try_pop(rh);  // frees one slot...
      q.close();            // ...racing the seal
    });
    producer.join();
    racer.join();
    ASSERT_NE(accepted.load(), -1);
    std::vector<uint64_t> out;
    q.drain(h, out);
    uint64_t nines = 0;
    for (uint64_t v : out) nines += (v == 999u);
    ASSERT_EQ(nines, uint64_t(accepted.load()))
        << "round " << r << ": push_wait said "
        << (accepted.load() ? "kOk" : "kClosed") << " but " << nines
        << " copies drained";
  }
}

// Differential check through the linearizability checker: a concurrent
// workload on the bounded blocking queue records a full history (with kFull
// rejections unrecorded — a failed push has no effect) and must pass the
// same FIFO + EMPTY-legality conditions the unbounded WFQueue is held to.
// This is the "unmodified Traits seams" acceptance test: the checker cannot
// tell which backend produced the history.
TYPED_TEST(BoundedBlockingTest, HistoryIsLinearizableUnderChecker) {
  for (int round = 0; round < 3; ++round) {
    TypeParam q(16);
    lin::HistoryRecorder rec;
    constexpr unsigned kProducers = 2, kConsumers = 2;
    std::vector<lin::HistoryRecorder::ThreadLog*> plogs, clogs;
    for (unsigned i = 0; i < kProducers; ++i) plogs.push_back(rec.make_log(i));
    for (unsigned i = 0; i < kConsumers; ++i) {
      clogs.push_back(rec.make_log(kProducers + i));
    }
    constexpr uint64_t kPerProducer = 1500;
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();
        auto* log = plogs[p];
        for (uint64_t i = 1; i <= kPerProducer; ++i) {
          uint64_t v = (uint64_t(p + 1) << 40) | i;
          uint64_t ts = log->invoke();
          PushStatus st = q.push_wait(h, v);
          if (st != PushStatus::kOk) break;  // closed: no effect, unrecorded
          log->complete(lin::OpKind::kEnqueue, v, ts);
        }
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&, c] {
        auto h = q.get_handle();
        auto* log = clogs[c];
        for (;;) {
          uint64_t v = 0;
          uint64_t ts = log->invoke();
          PopStatus st = q.pop_wait(h, v);
          if (st == PopStatus::kOk) {
            log->complete(lin::OpKind::kDequeue, v, ts);
          } else {
            log->complete(lin::OpKind::kDequeueEmpty, 0, ts);
            break;
          }
        }
      });
    }
    for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
    q.close();
    for (unsigned c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
    auto result = lin::check_queue_history(rec.collect());
    ASSERT_TRUE(result.linearizable) << result.violation;
  }
}

}  // namespace
}  // namespace wfq
