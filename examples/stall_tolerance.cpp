// Stall-tolerance demo: the observable difference between a wait-free
// queue and a blocking one when a thread stops at the worst possible
// moment (the scenario §1 motivates: deadlock/priority-inversion freedom).
//
// One "victim" thread is periodically interrupted by SIGUSR1; its handler
// sleeps for a while, freezing the victim at a RANDOM point in its code —
// possibly mid-operation. Meanwhile peer threads keep operating and we
// record their worst-case single-operation latency.
//
//   * wfq::WFQueue: a frozen thread cannot hold anything other threads
//     need for progress (helpers complete its published request at most);
//     peers' worst-case latency stays at scheduler noise.
//   * MutexQueue: if the freeze lands inside the critical section, every
//     peer stalls for the entire sleep.
//
//   $ ./stall_tolerance [seconds-per-queue]
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "baselines/mutex_queue.hpp"
#include "core/wf_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kStallDuration = std::chrono::milliseconds(30);

void stall_handler(int) {
  // Freeze wherever we were interrupted — including inside queue code.
  auto until = Clock::now() + kStallDuration;
  while (Clock::now() < until) {
  }
}

template <class Queue>
uint64_t run_scenario(const char* name, double seconds) {
  Queue q;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> worst_ns{0};
  std::atomic<uint64_t> peer_ops{0};

  // Victim: hammers the queue; will be frozen repeatedly.
  pthread_t victim_id;
  std::thread victim([&] {
    auto h = q.get_handle();
    uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      q.enqueue(h, v++);
      (void)q.dequeue(h);
    }
  });
  victim_id = victim.native_handle();

  // Peers: measure per-operation latency.
  constexpr unsigned kPeers = 2;
  std::vector<std::thread> peers;
  for (unsigned p = 0; p < kPeers; ++p) {
    peers.emplace_back([&, p] {
      auto h = q.get_handle();
      uint64_t v = (uint64_t(p) + 1) << 32;
      uint64_t local_worst = 0, ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto t0 = Clock::now();
        q.enqueue(h, ++v);
        (void)q.dequeue(h);
        auto ns = uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               Clock::now() - t0)
                               .count());
        if (ns > local_worst) local_worst = ns;
        ++ops;
      }
      peer_ops.fetch_add(ops);
      uint64_t cur = worst_ns.load();
      while (local_worst > cur && !worst_ns.compare_exchange_weak(cur, local_worst)) {
      }
    });
  }

  // Stall injector: signal the victim every ~70 ms.
  auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  unsigned stalls = 0;
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    pthread_kill(victim_id, SIGUSR1);
    ++stalls;
  }
  stop.store(true);
  victim.join();
  for (auto& t : peers) t.join();

  std::printf("%-12s %3u stalls injected, peers completed %8llu op-pairs, "
              "worst peer op latency: %8.3f ms\n",
              name, stalls, (unsigned long long)peer_ops.load(),
              double(worst_ns.load()) / 1e6);
  return worst_ns.load();
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = argc > 1 ? std::strtod(argv[1], nullptr) : 2.0;

  struct sigaction sa{};
  sa.sa_handler = stall_handler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGUSR1, &sa, nullptr);

  std::printf("Freezing one thread for %lld ms at random points while "
              "peers keep working:\n",
              (long long)kStallDuration.count());
  uint64_t wf = run_scenario<wfq::WFQueue<uint64_t>>("WFQueue", seconds);
  uint64_t mx =
      run_scenario<wfq::baselines::MutexQueue<uint64_t>>("MutexQueue", seconds);

  std::printf("\nworst-case peer latency: WFQueue %.3f ms vs MutexQueue "
              "%.3f ms\n",
              double(wf) / 1e6, double(mx) / 1e6);
  std::printf("(on a single-hardware-thread host scheduler noise dominates "
              "both; on multi-core hosts the mutex number tracks the stall "
              "duration while the wait-free number does not)\n");
  return 0;
}
