// Tests for the Listing 1 obstruction-free queue realization.
#include "core/obstruction_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/queue_test_util.hpp"

namespace wfq {
namespace {

TEST(ObstructionQueue, StartsEmpty) {
  ObstructionQueue<uint64_t> q;
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(ObstructionQueue, SequentialFifo) {
  ObstructionQueue<uint64_t> q(1 << 15);
  test::run_sequential_fifo(q, 5000);
}

TEST(ObstructionQueue, EmptyDequeuesBurnIndexSpace) {
  ObstructionQueue<uint64_t> q(128);
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
  EXPECT_GE(q.head_index(), 1u);
}

TEST(ObstructionQueue, ThrowsWhenIndexSpaceExhausted) {
  ObstructionQueue<uint64_t> q(16);
  auto h = q.get_handle();
  for (int i = 0; i < 16; ++i) q.enqueue(h, i + 1);
  EXPECT_THROW(q.enqueue(h, 99), std::length_error);
}

TEST(ObstructionQueue, InterleavedMarkedCellsAreSkipped) {
  ObstructionQueue<uint64_t> q(1 << 12);
  auto h = q.get_handle();
  for (int round = 0; round < 50; ++round) {
    EXPECT_FALSE(q.dequeue(h).has_value());  // marks a cell unusable
    q.enqueue(h, round + 1);                 // must skip the dead cell
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, uint64_t(round + 1));
  }
}

TEST(ObstructionQueue, BoxedPayloadsAndDrainOnDestroy) {
  auto* q = new ObstructionQueue<std::string>(1024);
  {
    auto h = q->get_handle();
    q->enqueue(h, "alpha");
    q->enqueue(h, "beta");
    EXPECT_EQ(q->dequeue(h), "alpha");
  }  // handles are registered with the queue and must not outlive it
  delete q;  // "beta" still enqueued; destructor must free its box
}

TEST(ObstructionQueue, MpmcProperty) {
  // Non-blocking (obstruction-free) but correct when it completes; under
  // real schedulers this terminates. Budget the index space generously:
  // every dequeue retry burns a cell.
  ObstructionQueue<uint64_t> q(1 << 20);
  test::run_mpmc_property(q, 4, 4, 2000);
}

TEST(ObstructionQueue, PairsConservation) {
  ObstructionQueue<uint64_t> q(1 << 20);
  test::run_pairs_conservation(q, 4, 2000);
}

}  // namespace
}  // namespace wfq
