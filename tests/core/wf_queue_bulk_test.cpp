// Batched operations (enqueue_bulk / dequeue_bulk): batch-as-sequence
// linearizability, the short-return emptiness contract, interaction with
// single ops, segment-boundary traversal, and the typed (boxed-codec)
// wrapper. The concurrent cases run under the tsan ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "support/queue_test_util.hpp"

namespace wfq {
namespace {

// Small segments so batches routinely cross segment boundaries.
struct SmallSegTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 64;
};

using SmallQ = WFQueue<uint64_t, SmallSegTraits>;

TEST(WfBulk, SequentialFifoAcrossBatchSizes) {
  SmallQ q;
  auto h = q.get_handle();
  std::deque<uint64_t> model;
  uint64_t next = 1;
  for (std::size_t k : {1, 2, 3, 8, 64, 65, 200}) {
    std::vector<uint64_t> vals(k);
    for (auto& v : vals) v = next++;
    q.enqueue_bulk(h, vals.data(), k);
    model.insert(model.end(), vals.begin(), vals.end());
  }
  while (!model.empty()) {
    std::vector<uint64_t> out(7);
    std::size_t got = q.dequeue_bulk(h, out.data(), out.size());
    ASSERT_EQ(got, std::min<std::size_t>(out.size(), model.size()));
    for (std::size_t j = 0; j < got; ++j) {
      ASSERT_EQ(out[j], model.front());
      model.pop_front();
    }
  }
  uint64_t dummy;
  EXPECT_EQ(q.dequeue_bulk(h, &dummy, 1), 0u);
}

TEST(WfBulk, EdgeCases) {
  SmallQ q;
  auto h = q.get_handle();
  uint64_t v = 42;
  q.enqueue_bulk(h, &v, 0);  // no-op
  std::vector<uint64_t> out(16);
  EXPECT_EQ(q.dequeue_bulk(h, out.data(), 0), 0u);
  EXPECT_EQ(q.dequeue_bulk(h, out.data(), 16), 0u);  // empty queue
  q.enqueue_bulk(h, &v, 1);  // single-item batch = ordinary enqueue
  EXPECT_EQ(q.dequeue_bulk(h, out.data(), 16), 1u);  // short: seen empty
  EXPECT_EQ(out[0], 42u);
}

// The satellite differential test: a random mix of bulk and single ops
// checked operation-by-operation against the sequential oracle. With one
// thread every result is deterministic: dequeue_bulk must return exactly
// min(k, size) values in FIFO order.
TEST(WfBulk, MixedBulkSingleDifferentialVsSequentialOracle) {
  std::mt19937_64 rng(0xb01dface);
  for (int round = 0; round < 20; ++round) {
    SmallQ q;
    auto h = q.get_handle();
    std::deque<uint64_t> oracle;
    uint64_t next = 1;
    for (int step = 0; step < 400; ++step) {
      switch (rng() % 4) {
        case 0: {  // single enqueue
          q.enqueue(h, next);
          oracle.push_back(next++);
          break;
        }
        case 1: {  // single dequeue
          auto v = q.dequeue(h);
          if (oracle.empty()) {
            ASSERT_FALSE(v.has_value());
          } else {
            ASSERT_TRUE(v.has_value());
            ASSERT_EQ(*v, oracle.front());
            oracle.pop_front();
          }
          break;
        }
        case 2: {  // bulk enqueue, k in [2, 97]
          std::size_t k = 2 + rng() % 96;
          std::vector<uint64_t> vals(k);
          for (auto& v : vals) {
            v = next++;
            oracle.push_back(v);
          }
          q.enqueue_bulk(h, vals.data(), k);
          break;
        }
        default: {  // bulk dequeue, k in [2, 97]
          std::size_t k = 2 + rng() % 96;
          std::vector<uint64_t> out(k);
          std::size_t got = q.dequeue_bulk(h, out.data(), k);
          ASSERT_EQ(got, std::min(k, oracle.size()));
          for (std::size_t j = 0; j < got; ++j) {
            ASSERT_EQ(out[j], oracle.front());
            oracle.pop_front();
          }
          break;
        }
      }
    }
    // Drain and compare the tail.
    while (!oracle.empty()) {
      auto v = q.dequeue(h);
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, oracle.front());
      oracle.pop_front();
    }
    ASSERT_FALSE(q.dequeue(h).has_value());
  }
}

// Concurrent: producers enqueue in random-size batches, consumers dequeue
// in random-size batches mixed with singles. Checks exactly-once delivery
// and per-consumer FIFO order per producer (the MPMC property), which
// covers intra-batch order: each producer's batch carries increasing
// sequence numbers.
TEST(WfBulk, MpmcMixedBulkAndSingle) {
  constexpr unsigned kProducers = 3, kConsumers = 3;
  constexpr uint64_t kPerProducer = 6'000;
  SmallQ q;
  const uint64_t total = kPerProducer * kProducers;
  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> producers_done{false};
  std::vector<std::vector<uint64_t>> consumed_by(kConsumers);

  std::vector<std::thread> threads;
  for (unsigned pi = 0; pi < kProducers; ++pi) {
    threads.emplace_back([&, pi] {
      std::mt19937_64 rng(1000 + pi);
      auto h = q.get_handle();
      uint64_t s = 0;
      while (s < kPerProducer) {
        std::size_t k = 1 + rng() % 17;
        if (k > kPerProducer - s) k = std::size_t(kPerProducer - s);
        if (rng() % 4 == 0) {
          for (std::size_t j = 0; j < k; ++j, ++s) {
            q.enqueue(h, test::make_val(pi, s));
          }
        } else {
          std::vector<uint64_t> vals(k);
          for (std::size_t j = 0; j < k; ++j, ++s) {
            vals[j] = test::make_val(pi, s);
          }
          q.enqueue_bulk(h, vals.data(), k);
        }
      }
    });
  }
  for (unsigned ci = 0; ci < kConsumers; ++ci) {
    threads.emplace_back([&, ci] {
      std::mt19937_64 rng(2000 + ci);
      auto h = q.get_handle();
      auto& mine = consumed_by[ci];
      mine.reserve(total / kConsumers + 64);
      std::vector<uint64_t> out(32);
      while (consumed.load(std::memory_order_relaxed) < total) {
        std::size_t got;
        if (rng() % 4 == 0) {
          auto v = q.dequeue(h);
          got = v.has_value() ? 1 : 0;
          if (got) out[0] = *v;
        } else {
          got = q.dequeue_bulk(h, out.data(), 1 + rng() % 17);
        }
        if (got > 0) {
          mine.insert(mine.end(), out.begin(), out.begin() + got);
          consumed.fetch_add(got, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) &&
                   consumed.load(std::memory_order_relaxed) >= total) {
          break;
        }
      }
    });
  }
  for (unsigned i = 0; i < kProducers; ++i) threads[i].join();
  producers_done.store(true, std::memory_order_release);
  for (unsigned i = kProducers; i < threads.size(); ++i) threads[i].join();

  ASSERT_EQ(consumed.load(), total);
  std::vector<std::vector<bool>> seen(
      kProducers, std::vector<bool>(kPerProducer, false));
  for (auto& vec : consumed_by) {
    for (uint64_t v : vec) {
      unsigned prod = test::val_producer(v);
      uint64_t seq = test::val_seq(v);
      ASSERT_LT(prod, kProducers);
      ASSERT_LT(seq, kPerProducer);
      ASSERT_FALSE(seen[prod][seq]) << "duplicate (" << prod << "," << seq
                                    << ")";
      seen[prod][seq] = true;
    }
  }
  for (unsigned ci = 0; ci < kConsumers; ++ci) {
    std::vector<int64_t> last(kProducers, -1);
    for (uint64_t v : consumed_by[ci]) {
      unsigned prod = test::val_producer(v);
      auto seq = int64_t(test::val_seq(v));
      ASSERT_GT(seq, last[prod]) << "consumer " << ci << " saw producer "
                                 << prod << " out of FIFO order";
      last[prod] = seq;
    }
  }
}

// Concurrent bulk dequeuers against bulk enqueuers with zero padding
// between batch sizes and thread counts chosen to force ticket theft and
// residual fallbacks (patience 0 pushes contended items onto the slow
// path, so bulk fallbacks and helpers interleave).
TEST(WfBulk, BulkUnderSlowPathPressure) {
  WfConfig cfg;
  cfg.patience = 0;
  SmallQ q(cfg);
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kPairsPerThread = 3'000;
  std::atomic<uint64_t> got_total{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(42 + t);
      auto h = q.get_handle();
      std::vector<uint64_t> vals(16), out(16);
      uint64_t mine = 0;
      for (uint64_t i = 0; i < kPairsPerThread;) {
        std::size_t k = 1 + rng() % 16;
        if (k > kPairsPerThread - i) k = std::size_t(kPairsPerThread - i);
        for (std::size_t j = 0; j < k; ++j) {
          vals[j] = test::make_val(t, i + j);
        }
        q.enqueue_bulk(h, vals.data(), k);
        mine += q.dequeue_bulk(h, out.data(), k);
        i += k;
      }
      got_total.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  auto h = q.get_handle();
  std::vector<uint64_t> out(64);
  uint64_t rest = 0;
  for (std::size_t got; (got = q.dequeue_bulk(h, out.data(), 64)) > 0;) {
    rest += got;
  }
  ASSERT_EQ(got_total.load() + rest, uint64_t{kThreads} * kPairsPerThread);
  // Wait-freedom accounting stays bounded per *item*, bulk or not.
  auto stats = q.stats();
  EXPECT_EQ(stats.enqueues(), uint64_t{kThreads} * kPairsPerThread);
}

// The typed wrapper's non-identity codec path (boxed slots), including the
// heap spill for batches larger than the inline scratch.
TEST(WfBulk, TypedBoxedCodecRoundTrip) {
  WFQueue<std::string> q;
  auto h = q.get_handle();
  constexpr std::size_t kN = 100;  // > the 64-slot inline scratch
  std::vector<std::string> in(kN), out(kN);
  for (std::size_t j = 0; j < kN; ++j) in[j] = "value-" + std::to_string(j);
  q.enqueue_bulk(h, in.data(), kN);
  ASSERT_EQ(q.dequeue_bulk(h, out.data(), kN), kN);
  for (std::size_t j = 0; j < kN; ++j) EXPECT_EQ(out[j], in[j]);
  // Leave a few boxed values behind: the destructor must drain them.
  q.enqueue_bulk(h, in.data(), 10);
}

}  // namespace
}  // namespace wfq
