// Ablation A: PATIENCE sweep. The paper evaluates only the endpoints WF-10
// and WF-0 (§5); this bench sweeps the fast-path attempt budget to show the
// whole trade-off curve between fast-path retry cost and helping overhead,
// and reports how often the slow path actually fires at each setting.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();
  unsigned threads = std::max(2u, 2 * hw);  // contended point
  if (const char* s = std::getenv("WFQ_THREADS")) {
    auto ts = thread_counts_from_env();
    threads = ts.back();
    (void)s;
  }

  std::cout << "== Ablation A: PATIENCE sweep (pairs workload, threads="
            << threads << ") ==\n\n";
  Table table({"patience", "Mops/s (95% CI)", "% slow enq", "% slow deq"});
  for (unsigned patience : {0u, 1u, 2u, 5u, 10u, 32u, 100u}) {
    wfq::WfConfig wf;
    wf.patience = patience;
    RunConfig cfg;
    cfg.kind = WorkloadKind::kPairs;
    cfg.threads = threads;
    cfg.total_ops = ops;
    cfg.use_delay = use_delay;

    // Throughput via the full methodology.
    auto ci = measure(mcfg, [&] {
      auto q = std::make_shared<wfq::WFQueue<uint64_t>>(wf);
      return std::function<double()>(
          [q, cfg] { return run_workload(*q, cfg).mops_raw(); });
    });
    // Path mix from one dedicated instrumented run.
    wfq::WFQueue<uint64_t> q(wf);
    (void)run_workload(q, cfg);
    auto s = q.stats();

    table.add_row({std::to_string(patience),
                   Table::fmt_ci(ci.mean, ci.half_width),
                   Table::fmt(s.pct_slow_enq(), 3),
                   Table::fmt(s.pct_slow_deq(), 3)});
    std::cerr << "  [patience] p=" << patience << " "
              << Table::fmt_ci(ci.mean, ci.half_width) << " Mops/s\n";
  }
  table.print();
  return 0;
}
