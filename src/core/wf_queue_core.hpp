// The wait-free FAA-based FIFO queue of Yang & Mellor-Crummey (PPoPP'16),
// "A Wait-free Queue as Fast as Fetch-and-Add".
//
// This file is a faithful C++20 transcription of the paper's Listings 2-4:
// the FAA fast path, the request-publishing slow paths with ring-of-handles
// helping (Kogan-Petrank fast-path-slow-path), and Dijkstra's protocol
// between enqueuers and dequeue helpers. Function and field names follow
// the paper (find_cell, enq_fast, enq_slow, help_enq, deq_fast, deq_slow,
// help_deq, advance_end_for_linearizability) so the code can be read side
// by side with the listings. Known pseudo-code errata fixed here (both
// confirmed against the authors' reference C implementation):
//
//  * Listing 4 line 174 passes a segment pointer where help_enq needs the
//    helper's handle; we pass the handle.
//  * Listing 5 line 236 forgets to restore q->I from -1 when nothing was
//    reclaimable, which would wedge cleanup forever; we restore it.
//  * Listing 5's scan starts at h->next and never considers the cleaner's
//    own tail pointer, which may lag its head; like the reference
//    implementation we start the scan at the cleaner itself.
//
// The two infrastructure layers the algorithm rides on live elsewhere:
//
//  * core/segment_list.hpp — the emulated infinite array (§3.2): segment
//    allocation, list extension, find_cell traversal, recycling pool.
//  * memory/segment_reclaim.hpp — the reclamation policy (§3.6 and its
//    Listing 5, plus hazard-pointer and epoch alternatives). Selected by
//    `Traits::Reclaim`; PaperReclaim is the default and reproduces the
//    paper's scheme exactly, including the erratum fixes above.
//
// The core operates on raw 64-bit slots with reserved values; see
// wf_queue.hpp for the typed, value-owning public wrapper.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "common/packed_state.hpp"
#include "core/adaptive.hpp"
#include "core/handle_registry.hpp"
#include "core/op_stats.hpp"
#include "core/segment_list.hpp"
#include "harness/fault_inject.hpp"
#include "memory/segment_reclaim.hpp"
#include "obs/metrics.hpp"

namespace wfq {

// Reserved slot values (§3.1: two special values ⊥ and ⊤ that may not be
// enqueued; EMPTY is an API-level result, never stored in a cell). These
// are namespace-scope so the cell layout below is independent of the queue
// traits; WFQueueCore re-exports them as kBot/kTop/kEmpty.
inline constexpr uint64_t kSlotBot = 0;                   ///< ⊥
inline constexpr uint64_t kSlotTop = ~uint64_t{0};        ///< ⊤
inline constexpr uint64_t kSlotEmpty = ~uint64_t{0} - 1;  ///< EMPTY
/// Return-only sentinel: dequeue could not complete because segment
/// allocation failed cleanly (the OOM seam exhausted retries and the
/// reserve pool). Never stored in a cell.
inline constexpr uint64_t kSlotNoMem = ~uint64_t{0} - 2;

/// An enqueue request: logically (val, pending, id). `state` packs
/// (pending, id) into one word so helpers can claim it with a single CAS.
struct WfEnqReq {
  std::atomic<uint64_t> val{kSlotBot};
  std::atomic<uint64_t> state{PackedState(false, 0).word()};
};

/// A dequeue request: logically (id, pending, idx); `state` packs
/// (pending, idx).
struct WfDeqReq {
  std::atomic<uint64_t> id{0};
  std::atomic<uint64_t> state{PackedState(false, 0).word()};
};

/// One queue cell: (val, enq, deq), initially (⊥, ⊥e, ⊥d). `reset()`
/// restores the pristine state when the segment pool recycles a segment
/// (SegmentList requirement).
struct WfCell {
  std::atomic<uint64_t> val{kSlotBot};
  std::atomic<WfEnqReq*> enq{nullptr};
  std::atomic<WfDeqReq*> deq{nullptr};

  void reset() {
    val.store(kSlotBot, std::memory_order_relaxed);
    enq.store(nullptr, std::memory_order_relaxed);
    deq.store(nullptr, std::memory_order_relaxed);
  }
};

/// Compile-time configuration of the queue core.
///
/// `kSegmentSize` is the paper's N (it used 2^10). `kConservativeOrdering`
/// upgrades every atomic access to seq_cst and adds explicit fences around
/// hazard-pointer publication — the portable correctness anchor. The default
/// (tuned) mode reproduces the paper's x86 claim: the hazard-pointer store on
/// the fast path is a plain release store ordered by the FAA that immediately
/// follows it, so the common path carries no extra fence. `Faa` selects the
/// fetch-and-add implementation: NativeFaa, or EmulatedFaa to reproduce the
/// paper's Power7 (LL/SC) configuration.
struct DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 1024;
  static constexpr bool kConservativeOrdering = false;
  static constexpr bool kCollectStats = true;
  using Faa = NativeFaa;

  /// Segment-reclamation policy (memory/segment_reclaim.hpp): decides when
  /// retired segments may be freed and what each operation publishes to
  /// make that safe. PaperReclaim is the §3.6 scheme — zero fast-path
  /// fences on x86; HpReclaim / EpochReclaim are the textbook alternatives
  /// for comparison (see docs/ALGORITHM.md "Reclamation policies").
  template <class SL>
  using Reclaim = PaperReclaim<SL>;

  /// Retired segments up to this count are recycled through a lock-free
  /// per-queue pool instead of round-tripping the allocator — the role
  /// jemalloc played in the paper's setup (§5.1: "jemalloc ... to avoid
  /// requesting memory pages from the OS on every allocation"). 0 disables
  /// pooling (every retired segment is freed immediately).
  static constexpr std::size_t kSegmentPoolCap = 32;

  /// Test seam: invoked at interleaving-sensitive points (after index FAAs,
  /// between a cell reservation and its validation, inside helping loops).
  /// A no-op in production; stress tests override it with randomized yields
  /// to widen the explored schedule space — essential on hosts with few
  /// hardware threads, where natural preemption rarely lands mid-operation.
  static void interleave_hint() {}

  /// Fault-injection hook (src/harness/fault_inject.hpp). NullInjector
  /// compiles every WFQ_INJECT site to nothing; fault tests substitute
  /// fault::ScriptedInjector to stall/crash/alloc-fail a victim thread at
  /// named points. Traits types that omit this member get NullInjector via
  /// fault::InjectorOf detection, so pre-existing custom traits still work.
  using Injector = fault::NullInjector;

  /// Observability hook (src/obs/metrics.hpp), same discipline as the
  /// injector: NullMetrics compiles every recording site — latency
  /// histograms AND the slow-path trace ring — to nothing (tools/ci.sh's
  /// obs leg greps a release binary to enforce it). Substitute
  /// obs::ObsMetrics<> to record; traits types that omit the member get
  /// NullMetrics via obs::MetricsOf detection.
  using Metrics = obs::NullMetrics;
};

/// How the PATIENCE knob is driven at runtime (WfConfig::patience_mode).
enum class PatienceMode : uint8_t {
  kFixed = 0,    ///< the paper's behavior: WfConfig::patience, forever
  kAdaptive = 1  ///< per-handle controller moved by the observed slow-path
                 ///< ratio (src/core/adaptive.hpp; docs/ALGORITHM.md §14)
};

/// Runtime tunables (the paper's PATIENCE and MAX_GARBAGE).
struct WfConfig {
  /// Extra fast-path attempts before an operation switches to the slow
  /// path. PATIENCE = 10 is the paper's practical setting (WF-10);
  /// PATIENCE = 0 stresses the slow path (WF-0). An operation makes
  /// `patience + 1` fast-path attempts in total, as in Listing 3/4.
  /// Under kAdaptive this seeds each handle's controller (clamped to
  /// [1, 64]) instead of being read directly.
  unsigned patience = 10;
  /// Number of retired segments allowed to accumulate before a dequeuer
  /// attempts reclamation (amortizes cleanup cost, §3.6).
  int64_t max_garbage = 64;
  /// Segments pre-allocated into the SegmentList's OOM reserve pool
  /// (clamped to SegmentList::kReserveSlots). Consulted only after
  /// allocation retries fail; refilled with priority as segments retire.
  /// 0 (the default) disables the airbag — operations fail as soon as
  /// retries do — and keeps segment accounting identical to a queue
  /// without the OOM seam.
  std::size_t reserve_segments = 0;
  // New knobs go below the original three — existing positional aggregate
  // initializers (WfConfig{patience, max_garbage, reserve}) must keep
  // meaning what they meant.
  /// Fixed PATIENCE (the default, and the only mode the paper evaluates)
  /// or per-handle adaptive PATIENCE. Adaptation moves only *when* the
  /// helping slow path starts, never whether it completes, so the
  /// wait-freedom bound is unchanged (docs/ALGORITHM.md §14).
  PatienceMode patience_mode = PatienceMode::kFixed;
  /// Adaptive-mode controller tuning (epoch length, EWMA weight,
  /// hysteresis thresholds). Ignored under kFixed; `adaptive.initial` is
  /// overridden by `patience` at construction.
  adaptive::PatienceConfig adaptive{};
  /// Next-segment header prefetch depth for the segment walk: how many
  /// successor headers find_cell_range pulls ahead of the batch, and
  /// whether single-op find_cell prefetches across an upcoming segment
  /// boundary. 0 disables; 1 is the pre-adaptive behavior.
  unsigned prefetch_segments = 1;
};

template <class Traits = DefaultWfTraits>
class WFQueueCore {
 public:
  using Traits_ = Traits;
  static constexpr std::size_t kSegmentSize = Traits::kSegmentSize;

  using SegList = SegmentList<WfCell, Traits>;
  using Segment = typename SegList::Segment;
  using Reclaim = typename Traits::template Reclaim<SegList>;

  // Algorithm-layer aliases kept for tests and wrappers that predate the
  // segment-layer split.
  using Cell = WfCell;
  using EnqReq = WfEnqReq;
  using DeqReq = WfDeqReq;

  /// Bulk operations resolve cells in chunks of this many at a time (one
  /// segment walk per chunk, stack-allocated pointer array). Batches larger
  /// than this still pay only one FAA; they just take ceil(n / chunk)
  /// segment walks.
  static constexpr std::size_t kBulkChunk = 64;
  static constexpr uint64_t kBot = kSlotBot;      ///< ⊥: cell untouched
  static constexpr uint64_t kTop = kSlotTop;      ///< ⊤: cell unusable
  static constexpr uint64_t kEmpty = kSlotEmpty;  ///< dequeue saw empty
  static constexpr uint64_t kNoMem = kSlotNoMem;  ///< dequeue failed: OOM

  /// Fault-injection hook resolved from the traits (NullInjector unless the
  /// traits opt in; see src/harness/fault_inject.hpp).
  using Injector = fault::InjectorOf<Traits>;

  /// Observability hook resolved from the traits (NullMetrics unless the
  /// traits opt in; see src/obs/metrics.hpp). Every recording site below is
  /// guarded by `if constexpr (Metrics::kEnabled)`, so a NullMetrics build
  /// carries no histogram or trace code at all.
  using Metrics = obs::MetricsOf<Traits>;

  /// True iff a slot value is legal to enqueue.
  static constexpr bool is_enqueueable(uint64_t v) noexcept {
    return v != kBot && v != kTop && v != kEmpty && v != kNoMem;
  }

  // Sentinels for the cell's request-pointer fields (⊥e/⊤e, ⊥d/⊤d).
  static EnqReq* enq_bot() noexcept { return nullptr; }
  static EnqReq* enq_top() noexcept {
    return reinterpret_cast<EnqReq*>(uintptr_t{1});
  }
  static DeqReq* deq_bot() noexcept { return nullptr; }
  static DeqReq* deq_top() noexcept {
    return reinterpret_cast<DeqReq*>(uintptr_t{1});
  }

  /// Per-thread state (Listing 2 `Handle`, augmented with the reclamation
  /// policy's per-handle block and instrumentation).
  struct Handle {
    // Segment pointers for enqueues/dequeues. Atomic because a cleaning
    // thread advances them on the owner's behalf (§3.6 "Update head and
    // tail pointers").
    std::atomic<Segment*> tail{nullptr};  ///< paper: Handle.tail / C: Ep
    std::atomic<Segment*> head{nullptr};  ///< paper: Handle.head / C: Dp
    std::atomic<Handle*> next{nullptr};   ///< ring of all handles
    typename Reclaim::PerHandle rcl;      ///< policy state (§3.6: hzdp)

    // Enqueue-/dequeue-side helping state. The request records are
    // helper-shared (CAS-claimed by any thread in the ring); the peer
    // cursors are owner-local. Padding keeps each request record alone on
    // its cache line so helper CAS traffic cannot invalidate the owner's
    // cursor line, and the alignas keeps each side off its neighbours'
    // lines (see the static_asserts after Handle).
    struct alignas(kCacheLineSize) EnqSide {
      EnqReq req;              ///< helper-shared request record
      char pad_[kCacheLineSize - sizeof(EnqReq)];
      Handle* peer = nullptr;  ///< enqueue peer to help (owner-local)
      uint64_t help_id = 0;    ///< paper: enq.id — pending peer request id
    };
    struct alignas(kCacheLineSize) DeqSide {
      DeqReq req;              ///< helper-shared request record
      char pad_[kCacheLineSize - sizeof(DeqReq)];
      Handle* peer = nullptr;  ///< dequeue peer to help (owner-local)
    };

    EnqSide enq;
    DeqSide deq;

    Segment* spare = nullptr;  ///< one cached segment to recycle failed
                               ///< list-extension allocations (reference
                               ///< implementation optimization)
    uint64_t op_probes = 0;    ///< cells probed by the in-flight operation
                               ///< (owner-only; wait-freedom accounting)

    // Robustness state (orphan adoption; see docs/ALGORITHM.md §11).
    // `op_phase` is owner-written and read by an adopter only once the
    // owner provably takes no more steps (dead, or parked by the fault
    // injector): it distinguishes a request record that belongs to the
    // crashed operation from a stale one left by an ancient completed op
    // whose cell may long since have been reclaimed.
    std::atomic<uint8_t> op_phase{0};     ///< kPhaseIdle/kPhaseEnq/kPhaseDeq
    std::atomic<bool> orphaned{false};    ///< adopted via adopt_handle();
                                          ///< the owner's late release is
                                          ///< then a plain freelist push

    OpStats stats;
    typename Metrics::PerHandle obs;  ///< latency histograms + trace ring
                                      ///< (empty struct under NullMetrics)

    // Adaptive fast-path tuning (src/core/adaptive.hpp). Owner-local plain
    // state — ZERO atomics on the operation path; read/written only by the
    // handle's owner, reconfigured at registration. Dormant under kFixed.
    adaptive::PatienceController patience_ctl;
    adaptive::BulkKController bulk_ctl;

    Handle* next_free = nullptr;      ///< freelist link (guarded by mutex)
  };

  // Operation phases for Handle::op_phase.
  static constexpr uint8_t kPhaseIdle = 0;
  static constexpr uint8_t kPhaseEnq = 1;
  static constexpr uint8_t kPhaseDeq = 2;

  // False-sharing audit of Handle. Each request record must fit its line,
  // the owner-local cursor that follows it must start on the next line, and
  // each side's size must round to a whole number of lines — which, with
  // the alignas, also guarantees the owner-local fields after `deq`
  // (`spare`, `op_probes`, `stats`) begin on a fresh line of their own.
  static_assert(sizeof(EnqReq) <= kCacheLineSize &&
                    sizeof(DeqReq) <= kCacheLineSize,
                "request records must each fit one cache line");
  static_assert(offsetof(typename Handle::EnqSide, peer) == kCacheLineSize,
                "enq.peer must sit on the line after the enq request record");
  static_assert(offsetof(typename Handle::DeqSide, peer) == kCacheLineSize,
                "deq.peer must sit on the line after the deq request record");
  static_assert(sizeof(typename Handle::EnqSide) % kCacheLineSize == 0 &&
                    sizeof(typename Handle::DeqSide) % kCacheLineSize == 0,
                "helping-state blocks must tile whole cache lines");
  // (enq and deq cannot share a line with each other or with `spare`:
  // alignas places each side on a line boundary and the sizeof asserts
  // above make every block a whole number of lines.)

  explicit WFQueueCore(WfConfig cfg = {})
      : cfg_(cfg),
        segs_(cfg.reserve_segments, cfg.prefetch_segments),
        registry_(rcl_) {
    // The paper's knob doubles as the adaptive controller's seed; the
    // controller clamps it into [kMinPatience, kMaxPatience].
    cfg_.adaptive.initial = cfg_.patience;
    tail_index_->store(0, std::memory_order_relaxed);
    head_index_->store(0, std::memory_order_relaxed);
  }

  WFQueueCore(const WFQueueCore&) = delete;
  WFQueueCore& operator=(const WFQueueCore&) = delete;

  ~WFQueueCore() {
    // Handle spares bypass the pool: the SegmentList destructor (which runs
    // after this body) frees the remaining chain and drains the pool.
    registry_.for_each([this](Handle* h) {
      if (h->spare != nullptr) {
        segs_.free_raw(h->spare);
        h->spare = nullptr;
      }
    });
  }

  // -------------------------------------------------------------------
  // Thread registration: every thread operates through a Handle that is
  // linked into the helper ring (§3.3 "Thread-local state"). Handles are
  // recycled: releasing returns one to a freelist but never unlinks it from
  // the ring, which keeps the helping invariants (a peer pointer never
  // dangles) and lets cleaners keep advancing idle handles' segment
  // pointers. Registration is off the operation path and may block briefly
  // on the cleaner lock; enqueue/dequeue themselves stay wait-free.
  //
  // The mechanics (freelist, ring publication, frontier exclusion) are
  // HandleRegistry's; this queue contributes only its hooks — the recycled-
  // handle hardening assert, the obs-id assignment, and the helping-peer /
  // segment-pointer wiring that must happen inside the registration
  // critical section (docs/ALGORITHM.md §13).
  // -------------------------------------------------------------------

  Handle* register_handle() {
    return registry_.acquire(
        [this](Handle* h) {
          // release_handle hardening: a recycled handle must come back
          // clean — no published protection, no in-flight phase, no
          // pending request.
          assert(!rcl_.op_active(h) &&
                 h->op_phase.load(std::memory_order_relaxed) == kPhaseIdle &&
                 !PackedState::from_word(
                      h->enq.req.state.load(std::memory_order_relaxed))
                      .pending() &&
                 !PackedState::from_word(
                      h->deq.req.state.load(std::memory_order_relaxed))
                      .pending() &&
                 "recycled handle carries live operation state");
          (void)h;
        },
        [](Handle* h, std::size_t index) {
          (void)h;
          (void)index;
          if constexpr (Metrics::kEnabled) {
            // Stable per-handle obs id (1-based; 0 is the process-global
            // ring). Recycled handles keep theirs — trace rows stay
            // attributable.
            h->obs.id = uint32_t(index) + 1;
          }
        },
        [this](Handle* h, Handle* after) {
          // Inside the frontier lock, before h is published to the ring:
          // capture the current first segment (a cleaner must not free it
          // under us) and aim the helping peers at the handle that will
          // follow h (h itself when the ring was empty).
          Segment* front = segs_.first(std::memory_order_relaxed);
          h->tail.store(front, std::memory_order_relaxed);
          h->head.store(front, std::memory_order_relaxed);
          h->enq.peer = after;
          h->deq.peer = after;
          // Adaptive controllers restart from the queue's configured
          // baseline: a recycled handle's new owner inherits the knobs,
          // not the previous owner's workload history.
          h->patience_ctl.configure(cfg_.adaptive);
          h->bulk_ctl.reset();
        });
  }

  /// Return a handle to the freelist. Hardened: a handle released with a
  /// pending request or still-published protection (a guard leaked from the
  /// middle of an operation, a thread unwinding after an injected crash) is
  /// *adopted* first — its request is driven to completion and its
  /// protection cleared — so the next register_handle() reuser starts clean
  /// and, crucially, the reclamation frontier is no longer pinned by a
  /// dead operation (the paper assumes every thread keeps taking steps;
  /// see docs/ALGORITHM.md §11).
  void release_handle(Handle* h) {
    registry_.release(h, [this](Handle* victim) {
      if (victim->orphaned.exchange(false, std::memory_order_acq_rel)) {
        // adopt_handle() already completed the operation and cleared the
        // state while the owner was stalled; nothing left but the freelist.
      } else if (rcl_.op_active(victim) ||
                 victim->op_phase.load(std::memory_order_acquire) !=
                     kPhaseIdle) {
        adopt_orphan(victim);
      }
      assert(!rcl_.op_active(victim) &&
             "released handle still publishes protection");
    });
  }

  /// Adopt a handle whose owner provably takes no more steps (dead thread,
  /// permanently stalled victim) WITHOUT waiting for its HandleGuard to
  /// unwind: completes any pending request, clears protection, and marks
  /// the handle so the owner's eventual release (if it ever runs) is a
  /// plain freelist push. The handle stays out of circulation until that
  /// release — adoption unblocks the *cleaner*, not the handle slot.
  /// Precondition: the owner performs no further queue operations.
  void adopt_handle(Handle* h) {
    registry_.with_lock([&] {
      if (h->orphaned.load(std::memory_order_acquire)) return;
      if (rcl_.op_active(h) ||
          h->op_phase.load(std::memory_order_acquire) != kPhaseIdle) {
        adopt_orphan(h);
      }
      h->orphaned.store(true, std::memory_order_release);
    });
  }

  /// RAII registration for one thread.
  class HandleGuard {
   public:
    explicit HandleGuard(WFQueueCore& q) : q_(&q), h_(q.register_handle()) {}
    ~HandleGuard() {
      if (h_ != nullptr) q_->release_handle(h_);
    }
    HandleGuard(HandleGuard&& o) noexcept : q_(o.q_), h_(o.h_) {
      o.h_ = nullptr;
    }
    HandleGuard(const HandleGuard&) = delete;
    HandleGuard& operator=(const HandleGuard&) = delete;
    Handle* get() const noexcept { return h_; }
    Handle* operator->() const noexcept { return h_; }

   private:
    WFQueueCore* q_;
    Handle* h_;
  };

  // -------------------------------------------------------------------
  // Public operations (Listings 3 and 4).
  // -------------------------------------------------------------------

  /// Appends slot value `v` (must satisfy is_enqueueable). Wait-free:
  /// `patience + 1` fast-path attempts, then the helping slow path, which
  /// completes once every contending dequeuer has become a helper
  /// (Lemma 4.3: at most (n-1)^2 slow-path failures).
  ///
  /// Returns false only when segment allocation failed cleanly (the OOM
  /// seam exhausted retries and the reserve pool): the value was NOT
  /// enqueued and the queue state is intact — indices the operation FAA'd
  /// are abandoned exactly like contention-wasted fast-path attempts.
  bool enqueue(Handle* h, uint64_t v) {
    assert(is_enqueueable(v));
    // Op-start marker: park the request state at the unreachable index
    // kMaxIndex so an adopter can tell "no slow-path request this op" from
    // a stale record of an ancient, completed operation.
    h->enq.req.state.store(PackedState(false, PackedState::kMaxIndex).word(),
                           std::memory_order_relaxed);
    h->op_phase.store(kPhaseEnq, std::memory_order_release);
    // Protect the operation's root segment (with PaperReclaim this is the
    // §3.6 hazard-pointer publish whose fast-path ordering the FAA below
    // provides for free on x86).
    rcl_.begin_op(h, h->tail);
    WFQ_INJECT(Traits, "enq_begin");
    Traits::interleave_hint();  // protection published, operation not begun
    if constexpr (Traits::kCollectStats) h->op_probes = 0;
    const uint64_t obs_t0 = obs_start(h);
    uint64_t cell_id = 0;
    bool done = false;
    bool ok = true;
    const unsigned patience = effective_patience(h);
    try {
      for (unsigned p = 0; p <= patience && !done; ++p) {
        done = enq_fast(h, v, cell_id);
      }
    } catch (const SegmentAllocError&) {
      // Fast-path find_cell could not extend the list. No request was
      // published and no cell holds the value: fail the operation cleanly.
      ok = false;
    }
    if (ok) {
      // WF-10 completes >99% of operations on the fast path (Table 2);
      // the hint keeps the straight-line path fall-through.
      if (done) [[likely]] {
        count(h->stats.enq_fast);
      } else [[unlikely]] {
        // One kEnqSlow event per enqueue that left the fast path — the
        // trace total matches the enq_slow counter exactly (re-drives
        // inside enq_slow_finish do not re-emit).
        obs_trace(h, obs::TraceEvent::kEnqSlow, cell_id);
        ok = enq_slow(h, v, cell_id);
        count(h->stats.enq_slow);
      }
      note_adaptive(h, /*slow=*/!done);
    }
    flush_probes(h, h->stats.enq_probes, h->stats.max_enq_probes);
    obs_lat(h, obs_t0, [](auto& o) -> auto& { return o.enq_ns; });
    h->op_phase.store(kPhaseIdle, std::memory_order_release);
    rcl_.end_op(h);
    return ok;
  }

  /// Removes and returns the oldest value, kEmpty if the queue was observed
  /// empty at the linearization point, or kNoMem if segment allocation
  /// failed cleanly before any value was claimed (queue state intact).
  /// Wait-free (Lemma 4.4).
  uint64_t dequeue(Handle* h) {
    h->deq.req.state.store(PackedState(false, PackedState::kMaxIndex).word(),
                           std::memory_order_relaxed);
    h->op_phase.store(kPhaseDeq, std::memory_order_release);
    rcl_.begin_op(h, h->head);
    WFQ_INJECT(Traits, "deq_begin");
    if constexpr (Traits::kCollectStats) h->op_probes = 0;
    const uint64_t obs_t0 = obs_start(h);
    uint64_t v = kTop;
    uint64_t cell_id = 0;
    const unsigned patience = effective_patience(h);
    bool slow = false;
    try {
      for (unsigned p = 0; p <= patience; ++p) {
        v = deq_fast(h, cell_id);
        if (v != kTop) break;
      }
      // Same Table-2 asymmetry as enqueue: the slow fork is the rare one.
      if (v == kTop) [[unlikely]] {
        slow = true;
        obs_trace(h, obs::TraceEvent::kDeqSlow, cell_id);
        v = deq_slow(h, cell_id);
        count(h->stats.deq_slow);
      } else [[likely]] {
        count(h->stats.deq_fast);
      }
      note_adaptive(h, slow);
    } catch (const SegmentAllocError&) {
      // deq_fast rethrows only after parking its consumed index in the
      // debt table (settle_unreachable) and deq_slow cancels its request
      // before rethrowing, so no value has been claimed for this
      // operation and no index was silently abandoned.
      v = kNoMem;
    }
    if (v == kEmpty) {
      count(h->stats.deq_empty);
    } else if (v != kNoMem) {
      // Listing 4 line 135: a successful dequeuer helps its dequeue peer,
      // then moves to the next peer in the ring (Invariant 13).
      WFQ_INJECT(Traits, "deq_help_peer");
      try {
        help_deq(h, h->deq.peer);
      } catch (const SegmentAllocError&) {
        // Helping is best-effort under OOM: the peer's own loop (or a
        // later helper) completes the request once memory returns. Our
        // value is already claimed, so the operation still succeeds.
      }
      h->deq.peer = h->deq.peer->next.load(std::memory_order_relaxed);
    }
    // Probe accounting includes the peer help above: helping is part of
    // the dequeue's bounded work (Lemma 4.4).
    flush_probes(h, h->stats.deq_probes, h->stats.max_deq_probes);
    obs_lat(h, obs_t0, [](auto& o) -> auto& { return o.deq_ns; });
    h->op_phase.store(kPhaseIdle, std::memory_order_release);
    rcl_.end_op(h);
    poll_reclaim(h);
    return v;
  }

  // -------------------------------------------------------------------
  // Batched operations. One FAA on the shared index reserves `n`
  // consecutive cell ids — n prepaid fast-path tickets with consecutive
  // indices, indistinguishable to every other thread from n single-op
  // threads that FAA'd back to back and are being scheduled one after
  // another. The batch then commits each ticket through the ordinary
  // fast-path cell protocol, so the per-cell state machine (help_enq,
  // Dijkstra's protocol, the helping paths) is exactly the single-op one.
  // The contended FAA — the only serialized step (§3.2) — is paid once per
  // batch instead of once per item.
  // -------------------------------------------------------------------

  /// Batched enqueue: append vals[0..n) in order with one FAA on T.
  ///
  /// Linearizes as n consecutive enqueues in array order: tickets are
  /// consumed in increasing cell order, and any value whose tickets were
  /// all stolen (a dequeuer ⊤-ed the cell first — the same wasted attempt a
  /// failed enq_fast produces) falls back to the ordinary per-item
  /// operation, whose fast- or slow-path cell ids all land at or above
  /// base + n because the batch FAA already advanced T past them. Per-item
  /// wait-freedom is preserved: each item costs at most one prepaid ticket
  /// here plus one ordinary wait-free enqueue.
  ///
  /// Invariant 4 (T > cid before a value is visible at cid) holds for every
  /// ticket up front — the batch FAA advanced T to base + n — so ticket
  /// commits need no advance_end_for_linearizability, like enq_fast.
  /// Returns the number of values actually enqueued — `n` except under a
  /// clean allocation failure, where a prefix [0, returned) was enqueued
  /// and the rest was not (queue state intact).
  std::size_t enqueue_bulk(Handle* h, const uint64_t* vals, std::size_t n) {
    if (n == 0) return 0;
    if (n == 1) return enqueue(h, vals[0]) ? 1 : 0;
#ifndef NDEBUG
    for (std::size_t j = 0; j < n; ++j) assert(is_enqueueable(vals[j]));
#endif
    rcl_.begin_op(h, h->tail);
    Traits::interleave_hint();  // protection published, operation not begun
    if constexpr (Traits::kCollectStats) h->op_probes = 0;
    const uint64_t obs_t0 = obs_start(h);  // per batch, not per item
    const uint64_t base =
        Traits::Faa::fetch_add(*tail_index_, uint64_t(n), sc());
    WFQ_INJECT(Traits, "enq_bulk_faa_post");
    Traits::interleave_hint();  // stall point: n indices claimed, no cell
                                // touched — helpers must cope, as for a
                                // stalled single-op enqueuer
    std::size_t committed = 0;
    Segment* s = h->tail.load(acq());
    Cell* cells[kBulkChunk];
    std::size_t ticket = 0;
    try {
      for (; ticket < n;) {
        const std::size_t take = std::min(n - ticket, kBulkChunk);
        find_cell_range(h, s, base + ticket, take, cells, "enq_bulk");
        for (std::size_t j = 0; j < take; ++j) {
          Traits::interleave_hint();
          uint64_t expected = kBot;
          if (cells[j]->val.compare_exchange_strong(
                  expected, vals[committed], sc(),
                  std::memory_order_relaxed) &&
              !deposit_retracted(h, cells[j], base + ticket + j)) {
            if (++committed == n) break;
          }
          // else: a dequeuer sealed this cell, or the deposit landed in a
          // debt-parked cell and was retracted — ticket wasted, value
          // retries on the next one.
        }
        if (committed == n) break;
        ticket += take;
      }
    } catch (const SegmentAllocError&) {
      // Unreachable tickets are abandoned like contention-wasted ones (the
      // remaining values retry below as ordinary fallible enqueues), but a
      // parked debt at an abandoned ticket can never be repaid: drop them.
      for (std::size_t u = ticket; u < n; ++u) debt_gc(base + u);
    }
    h->tail.store(s, rel());
    count(h->stats.enq_bulk_batches);
    count_n(h->stats.enq_bulk_fast, committed);
    flush_probes(h, h->stats.enq_probes, h->stats.max_enq_probes);
    obs_lat(h, obs_t0, [](auto& o) -> auto& { return o.enq_bulk_ns; });
    rcl_.end_op(h);
    // Residual values (every ticket from theirs onward was stolen): plain
    // per-item wait-free enqueues, in order, stopping at the first clean
    // allocation failure.
    for (; committed < n; ++committed) {
      if (!enqueue(h, vals[committed])) break;
    }
    return committed;
  }

  /// Batched dequeue: remove up to `n` values into out[0..) with one FAA
  /// on H; returns the number of values claimed.
  ///
  /// Every reserved cell is visited through help_enq — exactly what a
  /// fast-path dequeuer landing there would do, so in-flight enqueues at
  /// those cells still get helped. Visiting all n cells is mandatory, not
  /// an optimization: no future dequeuer will ever FAA into these indices,
  /// and an unvisited cell could strand a deposited value (or an enqueue
  /// request Dijkstra's protocol obliges this dequeuer to referee).
  ///
  /// Linearizes as the sequence of successful claims, which occur at
  /// strictly increasing cell ids — the same shape as one thread running
  /// `got` single dequeues. A short return (got < n) means help_enq
  /// observed the queue empty at some reserved cell (Invariant 6: a valid
  /// instantaneous emptiness witness). The unfilled portion of the batch is
  /// deliberately NOT reported as per-item EMPTY results: an EMPTY observed
  /// mid-batch cannot be reordered after values claimed at later cells, so
  /// the contract is "short count == queue was seen empty during the call",
  /// exactly what a caller polling a queue needs.
  ///
  /// If tickets were lost to competing claimers but no emptiness was
  /// observed, the shortfall is topped up with ordinary per-item dequeues
  /// (ids >= base + n), stopping at the first EMPTY.
  ///
  /// Under PatienceMode::kAdaptive the caller's n is additionally split
  /// into FAA reservations capped by the handle's BulkKController, so a
  /// near-empty queue stops burning head indices on tickets its own
  /// emptiness witness predicts will be wasted. Each sub-reservation runs
  /// the fixed-mode protocol unchanged, and a short sub-batch is exactly
  /// the fixed contract's emptiness witness — the public contract ("short
  /// count == queue was seen empty during the call") carries over
  /// verbatim. Fixed mode takes the pre-adaptive code path, byte for byte.
  std::size_t dequeue_bulk(Handle* h, uint64_t* out, std::size_t n) {
    if (cfg_.patience_mode == PatienceMode::kAdaptive && n > 1) {
      return dequeue_bulk_adaptive(h, out, n);
    }
    return dequeue_bulk_fixed(h, out, n);
  }

  /// Fixed-reservation batched dequeue (see dequeue_bulk): one FAA claims
  /// all n tickets up front.
  std::size_t dequeue_bulk_fixed(Handle* h, uint64_t* out, std::size_t n) {
    if (n == 0) return 0;
    if (n == 1) {
      uint64_t v = dequeue(h);
      if (v == kEmpty) return 0;
      out[0] = v;
      return 1;
    }
    rcl_.begin_op(h, h->head);
    if constexpr (Traits::kCollectStats) h->op_probes = 0;
    const uint64_t obs_t0 = obs_start(h);  // per batch, not per item
    const uint64_t base =
        Traits::Faa::fetch_add(*head_index_, uint64_t(n), sc());
    WFQ_INJECT(Traits, "deq_bulk_faa_post");
    Traits::interleave_hint();  // stall point: n indices claimed, cells unseen
    std::size_t got = 0;
    bool saw_empty = false;
    Segment* s = h->head.load(acq());
    Cell* cells[kBulkChunk];
    std::size_t ticket = 0;
    try {
      for (; ticket < n; ticket += kBulkChunk) {
        const std::size_t take = std::min(n - ticket, kBulkChunk);
        find_cell_range(h, s, base + ticket, take, cells, "deq_bulk");
        for (std::size_t j = 0; j < take; ++j) {
          Traits::interleave_hint();
          const uint64_t v = help_enq(h, cells[j], base + ticket + j);
          if (v == kEmpty) {
            saw_empty = true;
            continue;  // keep visiting: later cells may need helping
          }
          if (v == kTop) continue;  // cell unusable, ticket wasted
          DeqReq* expected = deq_bot();
          if (cells[j]->deq.compare_exchange_strong(
                  expected, deq_top(), sc(), std::memory_order_relaxed)) {
            out[got++] = v;  // claimed, FIFO by increasing cell id
          }
          // else: a slow-path dequeue request claimed this value first.
        }
      }
    } catch (const SegmentAllocError&) {
      // Values claimed so far are real. The tickets from the failed chunk
      // onward were consumed by the FAA but their cells never visited —
      // and an enqueue whose walk succeeds later (reserve pool, memory
      // returning) could still deposit there. Park each as a debt, or
      // settle it in person, exactly as deq_fast does for its one index.
      for (std::size_t u = ticket; u < n; ++u) {
        const uint64_t sv = settle_unreachable(h, base + u);
        if (sv == kEmpty) {
          saw_empty = true;
        } else if (sv != kTop && sv != kNoMem) {
          out[got++] = sv;  // settled in person and claimed
        }
      }
    }
    h->head.store(s, rel());
    if (got != 0) {
      // As in dequeue (Listing 4 line 135): a successful dequeuer helps its
      // dequeue peer — once per batch, matching the one shared FAA.
      try {
        help_deq(h, h->deq.peer);
      } catch (const SegmentAllocError&) {
        // Best-effort under OOM, as in dequeue().
      }
      h->deq.peer = h->deq.peer->next.load(rlx());
    }
    count(h->stats.deq_bulk_batches);
    count_n(h->stats.deq_bulk_fast, got);
    if (saw_empty) count(h->stats.deq_empty);
    flush_probes(h, h->stats.deq_probes, h->stats.max_deq_probes);
    obs_lat(h, obs_t0, [](auto& o) -> auto& { return o.deq_bulk_ns; });
    rcl_.end_op(h);
    poll_reclaim(h);
    while (!saw_empty && got < n) {
      const uint64_t v = dequeue(h);
      if (v == kEmpty || v == kNoMem) break;
      out[got++] = v;
    }
    return got;
  }

  /// Adaptive-reservation batched dequeue (see dequeue_bulk): the AIMD
  /// controller caps each FAA so the reservation tracks how much the queue
  /// has actually been delivering to this handle. A full sub-batch grows
  /// the cap, a short one (the emptiness witness) halves it and ends the
  /// call, so per-item progress bounds are those of dequeue_bulk_fixed.
  std::size_t dequeue_bulk_adaptive(Handle* h, uint64_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const std::size_t k = std::min(n - got, h->bulk_ctl.k());
      const std::size_t r = dequeue_bulk_fixed(h, out + got, k);
      h->bulk_ctl.note_batch(k, r);
      got += r;
      if (r < k) break;  // saw empty (or clean OOM): stop reserving
    }
    if constexpr (Traits::kCollectStats) {
      OpStats::raise_max(h->stats.bulk_k_current, h->bulk_ctl.k());
    }
    return got;
  }

  // -------------------------------------------------------------------
  // Introspection (tests, benchmarks, Table 2).
  // -------------------------------------------------------------------

  /// Snapshot of all per-handle counters (call while quiesced for exact
  /// numbers; any time for an approximation).
  OpStats collect_stats() const {
    OpStats total;
    registry_.for_each([&](const Handle* h) { total.add(h->stats); });
    // Seam and injector counters live on the segment list / the (process-
    // global) injector rather than on handles; fold them in here.
    total.alloc_failures.fetch_add(segs_.alloc_failures(),
                                   std::memory_order_relaxed);
    total.reserve_pool_hits.fetch_add(segs_.reserve_pool_hits(),
                                      std::memory_order_relaxed);
    total.injected_stalls.fetch_add(Injector::stalls(),
                                    std::memory_order_relaxed);
    total.injected_crashes.fetch_add(Injector::crashes(),
                                     std::memory_order_relaxed);
    return total;
  }

  void reset_stats() {
    registry_.for_each([](Handle* h) { h->stats.reset(); });
  }

  /// Snapshot of everything the metrics layer recorded: merged latency
  /// histograms, retained trace records, and exact per-type event totals
  /// (per-handle rings plus the process-global segment-layer ring). Under
  /// NullMetrics returns an empty snapshot. Same quiescence contract as
  /// collect_stats for exact numbers. `include_global_ring = false` skips
  /// the process-global ring — for aggregators holding several queue
  /// instances (the sharded layer), which must absorb that shared ring
  /// exactly once across all of them.
  obs::ObsSnapshot collect_obs(bool include_global_ring = true) const {
    obs::ObsSnapshot snap;
    if constexpr (Metrics::kEnabled) {
      registry_.for_each([&](const Handle* h) {
        snap.enq_ns.merge(h->obs.enq_ns);
        snap.deq_ns.merge(h->obs.deq_ns);
        snap.enq_bulk_ns.merge(h->obs.enq_bulk_ns);
        snap.deq_bulk_ns.merge(h->obs.deq_bulk_ns);
        snap.absorb_ring(h->obs.ring);
      });
      if (include_global_ring) snap.absorb_ring(Metrics::global_ring());
    }
    return snap;
  }

  /// Clear all recorded metrics (histograms and rings, including the
  /// process-global one — so run-to-run soak phases start clean).
  void reset_obs() {
    if constexpr (Metrics::kEnabled) {
      registry_.for_each([](Handle* h) {
        h->obs.enq_ns.reset();
        h->obs.deq_ns.reset();
        h->obs.enq_bulk_ns.reset();
        h->obs.deq_bulk_ns.reset();
        h->obs.ring.reset();
      });
      Metrics::global_ring().reset();
    }
  }

  /// Number of segments currently in the list (O(segments); test helper).
  std::size_t live_segments() const { return segs_.live_segments(); }

  uint64_t tail_index() const {
    return tail_index_->load(std::memory_order_acquire);
  }
  uint64_t head_index() const {
    return head_index_->load(std::memory_order_acquire);
  }

  /// Heuristic occupancy indicator: tail minus head index, clamped at 0.
  /// NOT linearizable and NOT exact — indices also count cells wasted by
  /// contention and by EMPTY dequeues, and both move concurrently. Useful
  /// for monitoring/backpressure, never for emptiness decisions (use
  /// dequeue(), whose EMPTY result is linearizable).
  uint64_t approx_size() const {
    uint64_t t = tail_index_->load(std::memory_order_relaxed);
    uint64_t h = head_index_->load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }
  const WfConfig& config() const noexcept { return cfg_; }

  /// Total segments ever allocated minus freed (test helper for leak
  /// checks; exact only while quiesced — with a deferring policy, segments
  /// handed to an HP/epoch domain count as freed at hand-off).
  int64_t segments_outstanding() const { return segs_.outstanding(); }

  /// High-water mark of simultaneously live segments (the memory-bound
  /// axis of bench_reclaim_scheme; see SegmentList::peak_live_segments).
  std::size_t peak_live_segments() const {
    return segs_.peak_live_segments();
  }

  /// The active reclamation policy instance (benchmark diagnostics such as
  /// EpochReclaim::limbo_count).
  Reclaim& reclaimer() noexcept { return rcl_; }
  const Reclaim& reclaimer() const noexcept { return rcl_; }

 private:
  // ---- memory-order shorthands -------------------------------------
  static constexpr std::memory_order acq() {
    return Traits::kConservativeOrdering ? std::memory_order_seq_cst
                                         : std::memory_order_acquire;
  }
  static constexpr std::memory_order rel() {
    return Traits::kConservativeOrdering ? std::memory_order_seq_cst
                                         : std::memory_order_release;
  }
  static constexpr std::memory_order rlx() {
    return Traits::kConservativeOrdering ? std::memory_order_seq_cst
                                         : std::memory_order_relaxed;
  }
  static constexpr std::memory_order sc() { return std::memory_order_seq_cst; }

  static void count(std::atomic<uint64_t>& c) {
    if constexpr (Traits::kCollectStats) {
      c.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // ---- observability shims (src/obs/metrics.hpp) ---------------------
  // Same discarded-statement discipline as WFQ_INJECT: under NullMetrics
  // every call below is inside a discarded `if constexpr` branch, so the
  // clock reads, the histogram selectors (generic lambdas — never
  // instantiated when discarded) and the ring emits vanish entirely.

  /// Sampled op-start stamp: 0 means "this op is not sampled".
  static uint64_t obs_start(Handle* h) {
    if constexpr (Metrics::kEnabled) {
      return Metrics::op_start(h->obs);
    } else {
      return 0;
    }
  }

  /// Record the elapsed latency of a sampled op into the histogram `sel`
  /// picks out of the per-handle block.
  template <class Sel>
  static void obs_lat(Handle* h, uint64_t t0, Sel&& sel) {
    if constexpr (Metrics::kEnabled) {
      if (t0 != 0) sel(h->obs).record(Metrics::now_ns() - t0);
    }
  }

  /// Emit a typed slow-path event into `h`'s trace ring. Never sampled:
  /// trace totals must agree exactly with the OpStats counters they shadow.
  static void obs_trace(Handle* h, obs::TraceEvent ev, uint64_t a = 0,
                        uint64_t b = 0) {
    if constexpr (Metrics::kEnabled) {
      h->obs.ring.emit(ev, Metrics::now_ns(), h->obs.id, a, b);
    }
  }

  static void count_n(std::atomic<uint64_t>& c, uint64_t k) {
    if constexpr (Traits::kCollectStats) {
      c.fetch_add(k, std::memory_order_relaxed);
    }
  }

  /// Fold the finished operation's probe count into the per-handle totals
  /// and high-water mark (wait-freedom accounting).
  static void flush_probes(Handle* h, std::atomic<uint64_t>& total,
                           std::atomic<uint64_t>& max) {
    if constexpr (Traits::kCollectStats) {
      total.fetch_add(h->op_probes, std::memory_order_relaxed);
      if (h->op_probes > max.load(std::memory_order_relaxed)) {
        max.store(h->op_probes, std::memory_order_relaxed);
      }
    }
  }

  // ---- adaptive fast-path tuning (src/core/adaptive.hpp) -------------

  /// PATIENCE for this operation: the fixed knob, or the handle's
  /// controller under kAdaptive (an owner-local plain read — no atomics).
  unsigned effective_patience(const Handle* h) const noexcept {
    return cfg_.patience_mode == PatienceMode::kAdaptive
               ? h->patience_ctl.patience()
               : cfg_.patience;
  }

  /// Feed one completed operation to the handle's patience controller and
  /// surface its (rare, epoch-boundary) decisions as stats counters and
  /// trace events. Fixed mode pays one predictable branch; adaptive mode
  /// adds two owner-local increments per op.
  void note_adaptive(Handle* h, bool slow) {
    if (cfg_.patience_mode != PatienceMode::kAdaptive) return;
    switch (h->patience_ctl.note_op(slow)) {
      case adaptive::Decision::kRaise:
        count(h->stats.patience_raises);
        obs_trace(h, obs::TraceEvent::kPatienceRaise,
                  h->patience_ctl.patience());
        break;
      case adaptive::Decision::kDrop:
        count(h->stats.patience_drops);
        obs_trace(h, obs::TraceEvent::kPatienceDrop,
                  h->patience_ctl.patience());
        break;
      case adaptive::Decision::kHold:
        break;
    }
  }

  /// Listing 2 find_cell, with probe accounting and the handle's spare
  /// segment wired into the segment layer's traversal.
  Cell* find_cell(Handle* h, Segment*& sp, uint64_t cell_id,
                  const char* who = "?") {
    if constexpr (Traits::kCollectStats) ++h->op_probes;
    return segs_.find_cell(sp, cell_id, h->spare, who);
  }

  /// Batch find_cell: resolve `n` consecutive cells with one segment walk
  /// (SegmentList::find_cell_range). Each cell still counts as one probe —
  /// the wait-freedom accounting bounds cells visited, not walks taken.
  void find_cell_range(Handle* h, Segment*& sp, uint64_t first_id,
                       std::size_t n, Cell** out, const char* who = "?") {
    if constexpr (Traits::kCollectStats) h->op_probes += n;
    segs_.find_cell_range(sp, first_id, n, out, h->spare, who);
  }

  /// Listing 2 advance_end_for_linearizability: raise the head or tail
  /// index to at least `cid` (Invariants 4 and 8).
  static void advance_end_for_linearizability(std::atomic<uint64_t>& e,
                                              uint64_t cid) {
    uint64_t cur = e.load(std::memory_order_relaxed);
    while (cur < cid &&
           !e.compare_exchange_weak(cur, cid, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    }
  }

  /// Listing 3 try_to_claim_req: claim request state (1, id) -> (0, cell).
  static bool try_to_claim_req(std::atomic<uint64_t>& state, uint64_t id,
                               uint64_t cell_id) {
    uint64_t expected = PackedState(true, id).word();
    return state.compare_exchange_strong(
        expected, PackedState(false, cell_id).word(), std::memory_order_seq_cst,
        std::memory_order_relaxed);
  }

  /// Listing 3 enq_commit: make the enqueue of `v` at cell `cid` visible —
  /// first push T past cid (Invariant 4), then deposit the value.
  void enq_commit(Cell* c, uint64_t v, uint64_t cid) {
    advance_end_for_linearizability(*tail_index_, cid + 1);
    c->val.store(v, rel());
  }

  // ---- OOM debt protocol (conservation under allocation failure) ------
  //
  // A dequeuer's FAA on H irrevocably consumes cell index i. If the
  // subsequent find_cell cannot materialize segment(i), abandoning the
  // index would strand any value a later enqueue deposits there (the
  // enqueuer's walk may succeed where ours failed: the reserve pool, or
  // memory returning) — no dequeue ever FAAs into i again. Instead the
  // dequeuer *parks the index as a debt* in a bounded table that every
  // depositor consults (one shared load when the table is empty) after
  // making a value visible. A depositor that lands on a parked index
  // claims the entry, seals the cell's `deq` field, and deposits the value
  // again at a fresh index — all inside its own operation, so the enqueue
  // simply linearizes at the later deposit and FIFO/linearizability are
  // preserved. Counted in OpStats::oom_rescues.
  //
  // The `deq` field is the single arbiter between a retracting depositor
  // and any dequeue-side claimer (an in-person settler below, or a
  // help_deq candidate claim): whoever CASes it from ⊥d first owns the
  // value's fate, so the value is consumed exactly once.
  //
  // The park itself is race-free against a concurrent deposit because a
  // deposit at i requires segment(i) to exist, and the parking dequeuer
  // re-probes the list *after* publishing the entry (seq_cst RMWs plus a
  // fence — the Dekker pairing with the depositor's seq_cst check): if the
  // list is still too short, no deposit has happened yet and every future
  // depositor sees the entry; if the segment appeared meanwhile, the
  // dequeuer races for its own entry back and settles the cell in person.

  /// Publish cell id `i` as a parked debt. False if the table is full.
  bool debt_log(uint64_t i) {
    for (auto& slot : debt_) {
      uint64_t expected = 0;
      if (slot.load(std::memory_order_relaxed) == 0 &&
          slot.compare_exchange_strong(expected, i + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        debt_count_->fetch_add(1, std::memory_order_seq_cst);
        return true;
      }
    }
    return false;
  }

  /// Claim (remove) the debt entry for cell id `i`; at most one claimer
  /// succeeds. The slot is cleared before the count drops, so the
  /// depositors' fast-path gate (count == 0) never hides a live entry.
  bool debt_claim(uint64_t i) {
    for (auto& slot : debt_) {
      uint64_t expected = i + 1;
      if (slot.load(std::memory_order_relaxed) == i + 1 &&
          slot.compare_exchange_strong(expected, 0, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        debt_count_->fetch_sub(1, std::memory_order_seq_cst);
        return true;
      }
    }
    return false;
  }

  /// Drop a parked debt for an index that can never receive a deposit
  /// (its enqueue-side owner abandoned it too, or help_enq sealed the cell
  /// barren). Pure slot hygiene — the cell is dead either way.
  void debt_gc(uint64_t i) {
    if (debt_count_->load(std::memory_order_seq_cst) == 0) return;
    (void)debt_claim(i);
  }

  /// Handle a dequeue-side index whose segment could not be materialized.
  /// Parks it as a debt when possible; when the segment appears
  /// concurrently (or the table is full) settles the cell in person with
  /// the ordinary help_enq / claim protocol. Returns a claimed value,
  /// kEmpty (valid emptiness witness), kTop (ticket wasted), or kNoMem
  /// (index parked; the operation may fail cleanly).
  uint64_t settle_unreachable(Handle* h, uint64_t i) {
    for (;;) {
      Cell* c = nullptr;
      if (debt_log(i)) {
        // Dekker pairing with deposit_retracted: publish, fence, re-probe.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        try {
          Segment* s = h->head.load(acq());
          c = find_cell(h, s, i, "debt_settle");
          h->head.store(s, rel());
        } catch (const SegmentAllocError&) {
          return kNoMem;  // parked; a future depositor will retract
        }
        // The segment appeared while we parked: take the entry back and
        // settle in person. Losing the race means a depositor (or a
        // barren-cell GC) owns the cell now — for us the ticket is dead.
        if (!debt_claim(i)) return kTop;
      } else {
        // Table full: conservation requires visiting the cell, so retry
        // the walk until the allocator recovers. Reaching this corner
        // takes >= kDebtSlots outstanding debts during a persistent OOM
        // storm; progress resumes as soon as any allocation succeeds.
        try {
          Segment* s = h->head.load(acq());
          c = find_cell(h, s, i, "debt_settle_full");
          h->head.store(s, rel());
        } catch (const SegmentAllocError&) {
          std::this_thread::yield();
          continue;
        }
      }
      const uint64_t v = help_enq(h, c, i);
      if (v == kEmpty) return kEmpty;
      if (v == kTop) return kTop;
      DeqReq* expected = deq_bot();
      if (c->deq.compare_exchange_strong(expected, deq_top(), sc(),
                                         std::memory_order_relaxed)) {
        return v;
      }
      return kTop;  // a slow-path dequeue request claimed the value first
    }
  }

  /// Post-deposit check, run by every path that makes a value visible in a
  /// cell. True means the deposit landed in a debt-parked (dead) cell and
  /// was retracted: the caller still owns the value and must deposit it
  /// again at a fresh index. False either because the index was never
  /// parked or because a dequeue-side claimer won the `deq` arbitration —
  /// then the value was consumed normally and the deposit stands.
  bool deposit_retracted(Handle* h, Cell* c, uint64_t i) {
    if (debt_count_->load(std::memory_order_seq_cst) == 0) return false;
    if (!debt_claim(i)) return false;
    DeqReq* expected = deq_bot();
    if (!c->deq.compare_exchange_strong(expected, deq_top(), sc(),
                                        std::memory_order_relaxed)) {
      return false;  // a dequeuer claimed the value first: it is consumed
    }
    count(h->stats.oom_rescues);
    obs_trace(h, obs::TraceEvent::kOomRescue, i);
    return true;
  }

  // ---- enqueue (Listing 3) -------------------------------------------

  /// One fast-path attempt: FAA a cell index, try to deposit with one CAS.
  /// On failure reports the obtained index through `cid` (it seeds the
  /// slow-path request id).
  bool enq_fast(Handle* h, uint64_t v, uint64_t& cid) {
    uint64_t i = Traits::Faa::fetch_add(*tail_index_, uint64_t{1}, sc());
    WFQ_INJECT(Traits, "enq_faa_post");
    Traits::interleave_hint();  // stall point: index claimed, cell untouched
    Segment* s = h->tail.load(acq());
    Cell* c;
    try {
      c = find_cell(h, s, i, "enq_fast");
    } catch (const SegmentAllocError&) {
      debt_gc(i);  // both sides failed to reach i: the cell is barren
      throw;
    }
    h->tail.store(s, rel());
    uint64_t expected = kBot;
    if (c->val.compare_exchange_strong(expected, v, sc(),
                                       std::memory_order_relaxed) &&
        !deposit_retracted(h, c, i)) {
      return true;
    }
    // Ticket wasted (a dequeuer sealed the cell, or the deposit landed in
    // a debt-parked cell and was retracted): the value retries.
    cid = i;
    return false;
  }

  /// Slow path: publish an enqueue request, keep claiming cells; complete
  /// when the enqueuer or any helper claims the request for a cell.
  /// Returns false iff allocation failed and the request was withdrawn
  /// before any helper claimed it (the value was not enqueued).
  bool enq_slow(Handle* h, uint64_t v, uint64_t cell_id) {
    EnqReq* r = &h->enq.req;
    // Publish (val first, then state with the pending bit: helpers read in
    // the reverse order, which is the two-word consistency argument of
    // §3.4 "Write the proper value in a cell").
    r->val.store(v, rel());
    r->state.store(PackedState(true, cell_id).word(), sc());
    WFQ_INJECT(Traits, "enq_slow_published");
    return enq_slow_finish(h, r, v, cell_id);
  }

  /// Drive a published enqueue request to completion. Shared by enq_slow
  /// and orphan adoption (the adopter calls it with the victim's handle to
  /// complete a request the victim abandoned mid-flight). On allocation
  /// failure the request is withdrawn with a single CAS to the unreachable
  /// index kMaxIndex — helpers treat the cancelled record exactly like any
  /// completed one (kMaxIndex can never equal a visited cell id, so the
  /// "claimed but uncommitted" helper branch can never resurrect it).
  bool enq_slow_finish(Handle* h, EnqReq* r, uint64_t v, uint64_t cell_id) {
    // Traverse with a local tail pointer: line 87 may need to revisit an
    // earlier cell than the last one probed.
    Segment* tmp_tail = h->tail.load(acq());
    // Whether WE closed the request. Every other way out of the loop —
    // while-condition seeing !pending(), a failed claim CAS, the OOM
    // withdrawal losing its CAS — means a helper claimed it for us.
    bool self_claimed = false;
    try {
      do {
        uint64_t i = Traits::Faa::fetch_add(*tail_index_, uint64_t{1}, sc());
        WFQ_INJECT(Traits, "enq_slow_faa");
        Traits::interleave_hint();
        Cell* c;
        try {
          c = find_cell(h, tmp_tail, i, "enq_slow_loop");
        } catch (const SegmentAllocError&) {
          debt_gc(i);  // this index is abandoned: a parked debt at it can
                       // never be repaid
          throw;
        }
        // Dijkstra's protocol with help_enq: reserve the cell for the
        // request, then check the cell was not already made unusable.
        EnqReq* expected = enq_bot();
        if (c->enq.compare_exchange_strong(expected, r, sc(),
                                           std::memory_order_relaxed) &&
            c->val.load(sc()) == kBot) {
          self_claimed = try_to_claim_req(r->state, cell_id, i);
          // Request now claimed for some cell (by us or a helper).
          break;
        }
      } while (PackedState::from_word(r->state.load(acq())).pending());
    } catch (const SegmentAllocError&) {
      uint64_t expected = PackedState(true, cell_id).word();
      if (r->state.compare_exchange_strong(
              expected, PackedState(false, PackedState::kMaxIndex).word(),
              sc(), std::memory_order_relaxed)) {
        return false;  // withdrawn cleanly; the value was not enqueued
      }
      // A helper claimed the request concurrently: the value WILL be
      // visible, so fall through and commit it. The commit path below is
      // allocation-free — the claimed cell's segment already exists and is
      // protected by this handle's published hzdp.
    }

    // The request was claimed for cell `id`; find it and commit there.
    uint64_t id = PackedState::from_word(r->state.load(acq())).index();
    assert(id != PackedState::kMaxIndex);
    if constexpr (Metrics::kEnabled) {
      if (!self_claimed) obs_trace(h, obs::TraceEvent::kHelpReceived, 0, id);
    }
    Segment* s = h->tail.load(acq());
    Cell* c = find_cell(h, s, id, "enq_slow_commit");
    h->tail.store(s, rel());
    WFQ_INJECT(Traits, "enq_slow_claimed");
    enq_commit(c, v, id);
    if (deposit_retracted(h, c, id)) {
      // The claimed cell was a parked debt: the request is complete but
      // the value would be stranded there. Re-drive it as a fresh request
      // (bounded: every retraction removes one debt entry).
      return enq_slow(h, v, id);
    }
    return true;
  }

  /// Listing 3 help_enq, called by dequeuers on every cell they visit.
  /// Returns: a deposited value; kTop if the cell is unusable and the
  /// dequeue must move on; kEmpty if the dequeue may linearize as EMPTY at
  /// this cell (Invariant 6: no pending enqueue can fill the cell and
  /// T <= i was observed).
  uint64_t help_enq(Handle* h, Cell* c, uint64_t i) {
    // Mark the cell unusable unless a value is already there (Dijkstra
    // protocol, dequeuer side: RMW on val then read enq).
    uint64_t cv = kBot;
    if (!c->val.compare_exchange_strong(cv, kTop, sc(), sc()) && cv != kTop) {
      return cv;  // an enqueue already deposited a value here
    }
    Traits::interleave_hint();  // Dijkstra window: cell marked, enq unread
    // c->val is now ⊤; try to help a slow-path enqueue use this cell.
    if (c->enq.load(sc()) == enq_bot()) {
      // Select a peer whose pending request we may help (Invariants 2, 3).
      Handle* p;
      EnqReq* r;
      PackedState s;
      for (;;) {  // at most two iterations
        p = h->enq.peer;
        r = &p->enq.req;
        s = PackedState::from_word(r->state.load(acq()));
        if (h->enq.help_id == 0 || h->enq.help_id == s.index()) break;
        // The request we owed help to has completed; move to next peer.
        h->enq.help_id = 0;
        h->enq.peer = p->next.load(rlx());
      }
      EnqReq* expected = enq_bot();
      const bool peer_wants = s.pending() && s.index() <= i;
      if (peer_wants &&
          !c->enq.compare_exchange_strong(expected, r, sc(),
                                          std::memory_order_relaxed)) {
        // Failed to reserve this cell for the peer's request: remember the
        // request id so we keep helping this peer (Invariant 2).
        h->enq.help_id = s.index();
      } else {
        if constexpr (Metrics::kEnabled) {
          // In this branch the CAS either succeeded (expected still ⊥e) or
          // was short-circuited away (!peer_wants, expected untouched), so
          // `peer_wants && expected == ⊥e` means we reserved the cell for
          // the peer's request.
          if (peer_wants && expected == enq_bot() && p != h) {
            obs_trace(h, obs::TraceEvent::kHelpGiven, p->obs.id, i);
          }
        }
        // Peer doesn't need help, can't use this cell, or we just reserved
        // the cell for it: next time help the next peer.
        h->enq.peer = p->next.load(rlx());
      }
      // If no request reserved the cell, seal it so later helpers don't.
      if (c->enq.load(acq()) == enq_bot()) {
        WFQ_INJECT(Traits, "help_enq_sealed");
        EnqReq* eb = enq_bot();
        c->enq.compare_exchange_strong(eb, enq_top(), sc(),
                                       std::memory_order_relaxed);
      }
    }
    EnqReq* e = c->enq.load(sc());
    if (e == enq_top()) {
      // No enqueue will ever fill this cell. A parked debt here can never
      // be repaid — drop it. EMPTY only if not enough enqueues linearized
      // before i (Invariant 6).
      debt_gc(i);
      return tail_index_->load(sc()) <= i ? kEmpty : kTop;
    }
    // The cell holds a real enqueue request. Read state before val (reverse
    // of the publication order) so `v` belongs to request s.id or later.
    PackedState s = PackedState::from_word(e->state.load(acq()));
    uint64_t v = e->val.load(acq());
    if (s.index() > i) {
      // Request too new for this cell: it can never deposit here.
      if (c->val.load(acq()) == kTop && tail_index_->load(sc()) <= i) {
        return kEmpty;
      }
    } else if (try_to_claim_req(e->state, s.index(), i) ||
               (s == PackedState(false, i) && c->val.load(acq()) == kTop)) {
      // We claimed the request for this cell, or someone did and the value
      // has not been committed yet: commit it ourselves.
      enq_commit(c, v, i);
    }
    return c->val.load(acq());
  }

  // ---- dequeue (Listing 4) -------------------------------------------

  /// One fast-path attempt. Returns a value, kEmpty, or kTop on failure
  /// (reporting the probed index through `cid`).
  uint64_t deq_fast(Handle* h, uint64_t& cid) {
    uint64_t i = Traits::Faa::fetch_add(*head_index_, uint64_t{1}, sc());
    WFQ_INJECT(Traits, "deq_faa_post");
    Traits::interleave_hint();  // stall point: index claimed, cell unseen
    Segment* s = h->head.load(acq());
    Cell* c;
    try {
      c = find_cell(h, s, i, "deq_fast");
    } catch (const SegmentAllocError&) {
      // The FAA already consumed index i; never abandon it silently. Park
      // it as a debt (clean kNoMem) or settle it in person (see the debt
      // protocol above).
      const uint64_t sv = settle_unreachable(h, i);
      if (sv == kNoMem) throw;  // parked: dequeue() reports kNoMem
      if (sv == kTop) cid = i;
      return sv;  // a claimed value, kEmpty, or kTop (ticket wasted)
    }
    h->head.store(s, rel());
    uint64_t v = help_enq(h, c, i);
    if (v == kEmpty) return kEmpty;
    if (v != kTop) {
      DeqReq* expected = deq_bot();
      if (c->deq.compare_exchange_strong(expected, deq_top(), sc(),
                                         std::memory_order_relaxed)) {
        return v;  // claimed the value
      }
    }
    cid = i;
    return kTop;
  }

  /// Slow path: publish a dequeue request and work on it together with any
  /// helpers until it is complete, then read out the result.
  uint64_t deq_slow(Handle* h, uint64_t cid) {
    DeqReq* r = &h->deq.req;
    r->id.store(cid, rel());
    r->state.store(PackedState(true, cid).word(), sc());
    WFQ_INJECT(Traits, "deq_slow_published");
    Traits::interleave_hint();  // request visible, no self-help yet

    try {
      help_deq(h, h);
    } catch (const SegmentAllocError&) {
      if (cancel_deq_request(h, r)) {
        throw;  // withdrawn before completion; dequeue() reports kNoMem
      }
      // Helpers completed the request concurrently; read out the result.
    }
    return deq_slow_epilogue(h, r);
  }

  /// Withdraw a pending dequeue request by CASing its state to the
  /// unreachable index kMaxIndex (looping across helper announcements).
  /// Returns false if a helper completed the request first. On successful
  /// withdrawal a helper may already have claimed a cell's `deq` field for
  /// the request without closing it; that value is then unreachable, which
  /// we account for pessimistically as an orphan drop.
  bool cancel_deq_request(Handle* h, DeqReq* r) {
    uint64_t w = r->state.load(acq());
    while (PackedState::from_word(w).pending()) {
      const bool announced =
          PackedState::from_word(w).index() != r->id.load(acq());
      if (r->state.compare_exchange_weak(
              w, PackedState(false, PackedState::kMaxIndex).word(), sc(),
              std::memory_order_relaxed)) {
        if (announced) count(h->stats.orphan_drops);
        return true;
      }
    }
    return false;
  }

  /// Completed-request epilogue shared by deq_slow and orphan adoption:
  /// locate the destination cell, read the value, raise H (Invariant 8).
  /// Allocation-free: the destination segment exists (the completing
  /// helper walked to it) and is protected by this handle's hzdp.
  uint64_t deq_slow_epilogue(Handle* h, DeqReq* r) {
    uint64_t i = PackedState::from_word(r->state.load(acq())).index();
    assert(i != PackedState::kMaxIndex);
    Segment* s = h->head.load(acq());
    Cell* c = find_cell(h, s, i, "deq_slow_epilogue");
    h->head.store(s, rel());
    uint64_t v = c->val.load(acq());
    advance_end_for_linearizability(*head_index_, i + 1);  // Invariant 8
    return v == kTop ? kEmpty : v;
  }

  /// Listing 4 help_deq: advance `helpee`'s pending dequeue request to
  /// completion — find candidate cells, announce them, and claim the
  /// announced cell for the request.
  void help_deq(Handle* h, Handle* helpee) {
    DeqReq* r = &helpee->deq.req;
    PackedState s = PackedState::from_word(r->state.load(acq()));
    uint64_t id = r->id.load(acq());
    if (!s.pending() || s.index() < id) return;  // request needs no help
    if constexpr (Metrics::kEnabled) {
      // Help genuinely begins here (the pending check above filtered the
      // common no-op calls); self-help from deq_slow is not "help given".
      if (helpee != h) {
        obs_trace(h, obs::TraceEvent::kHelpGiven, helpee->obs.id, id);
      }
    }

    // Local segment pointer for announced cells; never advances the
    // helpee's own head pointer (§3.5 "Don't advance segment pointers too
    // early").
    Segment* ha = helpee->head.load(acq());
    // §3.6: protect the foreign segment before re-reading the request
    // state. The policy's fence is required even on x86 (the one
    // non-fast-path fence of the paper's scheme). If the segment at `ha`
    // was reclaimed before our protection became visible, the request must
    // have completed and the s.idx == prior check below fails before we
    // dereference `ha`.
    rcl_.protect_foreign(h, ha);
    s = PackedState::from_word(r->state.load(sc()));

    uint64_t prior = id;
    uint64_t i = id;
    uint64_t cand = 0;  // 0 = none (real candidates are >= id + 1 >= 1)
    for (;;) {
      // Find a candidate cell, unless another helper announces one first.
      // `hc` is a second local segment pointer for the candidate scan.
      for (Segment* hc = ha; cand == 0 && s.index() == prior;) {
        WFQ_INJECT(Traits, "help_deq_scan");
        Traits::interleave_hint();
        Cell* c = find_cell(h, hc, ++i, "help_deq_scan");
        uint64_t v = help_enq(h, c, i);
        // Candidate: help_enq said EMPTY, or produced a value no dequeue
        // has claimed yet.
        if (v == kEmpty || (v != kTop && c->deq.load(acq()) == deq_bot())) {
          cand = i;
        } else {
          s = PackedState::from_word(r->state.load(acq()));
        }
      }
      if (cand != 0) {
        // Try to announce our candidate (Invariant 7: announced index only
        // increases).
        uint64_t expected = PackedState(true, prior).word();
        r->state.compare_exchange_strong(expected,
                                         PackedState(true, cand).word(), sc(),
                                         std::memory_order_relaxed);
        s = PackedState::from_word(r->state.load(acq()));
      }
      // Someone completed the request, or the helpee moved to a new one.
      if (!s.pending() || r->id.load(acq()) != id) return;

      // Work on the announced candidate.
      WFQ_INJECT(Traits, "help_deq_announced");
      Cell* c = find_cell(h, ha, s.index(), "help_deq_announced");
      DeqReq* expected = deq_bot();
      if (c->val.load(sc()) == kTop ||
          c->deq.compare_exchange_strong(expected, r, sc(),
                                         std::memory_order_relaxed) ||
          c->deq.load(acq()) == r) {
        // The candidate satisfies the request (permits EMPTY, or we/someone
        // claimed its value for r): close the request (Invariant 11).
        uint64_t sw = s.word();
        r->state.compare_exchange_strong(sw, PackedState(false, s.index()).word(),
                                         sc(), std::memory_order_relaxed);
        return;
      }
      // The announced cell was claimed by another dequeue; keep searching.
      prior = s.index();
      if (s.index() >= i) {
        cand = 0;
        i = s.index();
      }
    }
  }

  // ---- memory reclamation (Listing 5, delegated to the policy) ----------

  /// Called after every dequeue. The frontier cap (erratum, see DESIGN.md):
  /// the candidate frontier comes from the cleaner's *head* pointer, but
  /// when dequeues outrun enqueues (H >> T) head-side segments lie beyond
  /// segment(T / N). Enqueuers' future FAAs on T will still probe cells
  /// from T upward, so no segment at or after segment(T / N) may be freed
  /// and no thread's tail pointer may be advanced past it. Listing 5 omits
  /// this bound; without it the queue plants values at wrong indices and
  /// FIFO order breaks. The cap is read (seq_cst) before the policy's
  /// cleaner election, as the original cleanup did.
  void poll_reclaim(Handle* h) {
    const int64_t head_cap =
        int64_t(head_index_->load(std::memory_order_seq_cst) / kSegmentSize);
    const int64_t tail_cap =
        int64_t(tail_index_->load(std::memory_order_seq_cst) / kSegmentSize);
    ReclaimResult res =
        rcl_.poll(segs_, h, head_cap, tail_cap, cfg_.max_garbage);
    if (res.cleaned) {
      count(h->stats.cleanups);
      if constexpr (Traits::kCollectStats) {
        h->stats.segments_freed.fetch_add(res.freed,
                                          std::memory_order_relaxed);
      }
      obs_trace(h, obs::TraceEvent::kCleanup, uint64_t(res.freed));
    }
  }

  // ---- orphan adoption (docs/ALGORITHM.md §11) -------------------------

  /// Complete whatever operation handle `h` abandoned and clear its
  /// protection. Caller holds the registry lock and guarantees the owner takes
  /// no further steps. Runs under the injector's SuppressScope: adoption
  /// executes *because of* a fault and must not catch another scripted one.
  ///
  /// Decision table, per request record:
  ///   pending                          -> drive to completion (the enq
  ///       value becomes visible; the deq value is consumed and dropped,
  ///       counted as orphan_drops — the caller that would have received
  ///       it no longer exists).
  ///   completed, index == kMaxIndex    -> op-start marker or withdrawn
  ///       request: no cell involvement, nothing to do.
  ///   completed, index == i, phase matches -> the op crashed between its
  ///       claim and its epilogue: re-run the (idempotent) epilogue. The
  ///       phase gate is what makes this safe — without it a stale record
  ///       from an ancient op would send us walking to a reclaimed cell.
  void adopt_orphan(Handle* h) {
    typename Injector::SuppressScope suppress;
    const uint8_t phase = h->op_phase.load(std::memory_order_acquire);
    // Enqueue side.
    {
      EnqReq* r = &h->enq.req;
      PackedState s = PackedState::from_word(r->state.load(sc()));
      if (s.pending()) {
        enq_slow_finish(h, r, r->val.load(acq()), s.index());
      } else if (phase == kPhaseEnq && s.index() != PackedState::kMaxIndex) {
        // Claimed, possibly uncommitted: enq_commit re-raises T (monotone)
        // and re-stores the same value — idempotent even if the victim or
        // a helper already committed.
        uint64_t id = s.index();
        Segment* seg = h->tail.load(acq());
        Cell* c = find_cell(h, seg, id, "adopt_enq_commit");
        h->tail.store(seg, rel());
        enq_commit(c, r->val.load(acq()), id);
        if (deposit_retracted(h, c, id)) {
          // The victim's claimed cell was a parked debt: finish its
          // enqueue by re-driving the value, as enq_slow_finish would.
          enq_slow(h, r->val.load(acq()), id);
        }
      }
    }
    // Dequeue side.
    {
      DeqReq* r = &h->deq.req;
      PackedState s = PackedState::from_word(r->state.load(sc()));
      if (s.pending()) {
        try {
          help_deq(h, h);
          if (deq_slow_epilogue(h, r) != kEmpty) {
            count(h->stats.orphan_drops);
          }
        } catch (const SegmentAllocError&) {
          if (!cancel_deq_request(h, r) &&
              deq_slow_epilogue(h, r) != kEmpty) {
            count(h->stats.orphan_drops);
          }
        }
      } else if (phase == kPhaseDeq && s.index() != PackedState::kMaxIndex) {
        if (deq_slow_epilogue(h, r) != kEmpty) {
          count(h->stats.orphan_drops);
        }
      }
    }
    h->op_phase.store(kPhaseIdle, std::memory_order_release);
    rcl_.end_op(h);  // clears hzdp / hazard slots / epoch pin
    count(h->stats.adopted_handles);
    // Emitted into the victim's own ring (multi-writer safe; the adopter
    // runs on a different thread) so the trace row carries the victim's id.
    obs_trace(h, obs::TraceEvent::kAdopt);
  }

  // ---- members ---------------------------------------------------------

  friend struct WfTestPeek;  // white-box access for deterministic
                             // helping-path tests (tests/ only)

  WfConfig cfg_;
  CacheAligned<std::atomic<uint64_t>> tail_index_{0};  ///< paper: T
  CacheAligned<std::atomic<uint64_t>> head_index_{0};  ///< paper: H

  /// OOM debt table (see the debt-protocol section above): cell ids whose
  /// dequeuer could not materialize the segment, stored as id + 1 (0 =
  /// empty slot). `debt_count_` is the depositors' fast-path gate — a
  /// single shared load that stays 0 unless an allocation ever failed.
  static constexpr std::size_t kDebtSlots = 64;
  CacheAligned<std::atomic<uint64_t>> debt_count_{0};
  std::atomic<uint64_t> debt_[kDebtSlots] = {};
  SegList segs_;    ///< the emulated infinite array (paper: Q)
  Reclaim rcl_;     ///< reclamation policy (owns the paper's I)
  /// Registration scaffolding (freelist, helper ring, frontier exclusion):
  /// shared with SegmentQueueBase via HandleRegistry; this core only
  /// supplies the hooks in register_handle/release_handle above.
  HandleRegistry<Handle, Reclaim> registry_;
};

}  // namespace wfq
