// Figure 2, enqueue-dequeue pairs series (left column of the figure, all
// four platforms): throughput of WF-10, WF-0, F&A, CCQueue, MSQueue, LCRQ
// as a function of thread count, with 50-100 ns random work between
// operations and the Georges-et-al. methodology (§5.1).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  wfq::bench::run_figure("Figure 2: enqueue-dequeue pairs",
                         wfq::bench::WorkloadKind::kPairs);
  return 0;
}
