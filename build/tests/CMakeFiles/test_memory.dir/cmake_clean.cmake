file(REMOVE_RECURSE
  "CMakeFiles/test_memory.dir/memory/epoch_test.cpp.o"
  "CMakeFiles/test_memory.dir/memory/epoch_test.cpp.o.d"
  "CMakeFiles/test_memory.dir/memory/hazard_pointers_test.cpp.o"
  "CMakeFiles/test_memory.dir/memory/hazard_pointers_test.cpp.o.d"
  "test_memory"
  "test_memory.pdb"
  "test_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
