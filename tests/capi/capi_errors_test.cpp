// Table-driven contract test for every wfq_c.h error code: the numeric
// value of each code is frozen ABI (wfq.h consumers compile against the
// literals), and each code must be producible through a real call path —
// including WFQ_E_VERSION from a version-mismatched shm attach, which must
// reject without writing a byte to the foreign file.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "capi/wfq_c.h"
#include "ipc/shm_queue.hpp"

namespace {

// ---- the frozen numeric table ---------------------------------------------

struct CodeRow {
  const char* name;
  int code;
  int expected;
};

constexpr CodeRow kCodeTable[] = {
    {"WFQ_OK", WFQ_OK, 0},
    {"WFQ_E_RESERVED", WFQ_E_RESERVED, -1},
    {"WFQ_E_CLOSED", WFQ_E_CLOSED, -2},
    {"WFQ_E_NOMEM", WFQ_E_NOMEM, -3},
    {"WFQ_E_FULL", WFQ_E_FULL, -4},
    {"WFQ_E_VERSION", WFQ_E_VERSION, -5},
};

TEST(CapiErrorTable, NumericValuesAreFrozen) {
  for (const CodeRow& row : kCodeTable) {
    EXPECT_EQ(row.code, row.expected) << row.name << " drifted";
  }
  // All distinct (a new code reusing a value would corrupt callers'
  // switch statements silently).
  for (const CodeRow& a : kCodeTable) {
    for (const CodeRow& b : kCodeTable) {
      if (&a != &b) EXPECT_NE(a.code, b.code) << a.name << " vs " << b.name;
    }
  }
}

// ---- each code through a real call path -----------------------------------

std::string temp_path(const char* tag) {
  return "/tmp/wfq_capi_err_" + std::to_string(::getpid()) + "_" + tag;
}

TEST(CapiErrorPaths, OkFromPlainEnqueue) {
  wfq_queue_t* q = wfq_create_default();
  ASSERT_NE(q, nullptr);
  wfq_handle_t* h = wfq_handle_acquire(q);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(wfq_enqueue(h, 7), WFQ_OK);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CapiErrorPaths, ReservedFromReservedPayloads) {
  wfq_queue_t* q = wfq_create_default();
  ASSERT_NE(q, nullptr);
  wfq_handle_t* h = wfq_handle_acquire(q);
  ASSERT_NE(h, nullptr);
  const uint64_t reserved[] = {0, UINT64_MAX, UINT64_MAX - 1, UINT64_MAX - 2};
  for (uint64_t v : reserved) {
    EXPECT_EQ(wfq_enqueue(h, v), WFQ_E_RESERVED) << v;
  }
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CapiErrorPaths, ClosedFromEnqueueAfterClose) {
  wfq_queue_t* q = wfq_create_default();
  ASSERT_NE(q, nullptr);
  wfq_handle_t* h = wfq_handle_acquire(q);
  ASSERT_NE(h, nullptr);
  wfq_close(q);
  ASSERT_EQ(wfq_is_closed(q), 1);
  EXPECT_EQ(wfq_enqueue(h, 7), WFQ_E_CLOSED);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CapiErrorPaths, NomemFromImpossibleShmCreate) {
  // An arena too small to hold even the control structures is the C API's
  // allocation-failure path for the shm backend.
  std::string path = temp_path("nomem");
  wfq_queue_t* q = nullptr;
  EXPECT_EQ(wfq_shm_create(path.c_str(), 4096, nullptr, &q), WFQ_E_NOMEM);
  EXPECT_EQ(q, nullptr);
  std::remove(path.c_str());
}

TEST(CapiErrorPaths, FullFromBoundedRingAtCapacity) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = WFQ_BACKEND_SCQ;
  opt.capacity = 4;
  wfq_queue_t* q = wfq_create_ex(&opt);
  ASSERT_NE(q, nullptr);
  wfq_handle_t* h = wfq_handle_acquire(q);
  ASSERT_NE(h, nullptr);
  int rc = WFQ_OK;
  size_t pushed = 0;
  while ((rc = wfq_enqueue(h, pushed + 1)) == WFQ_OK) {
    ASSERT_LE(++pushed, wfq_capacity(q));
  }
  EXPECT_EQ(rc, WFQ_E_FULL);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CapiErrorPaths, VersionFromMismatchedArenaWithoutTouchingIt) {
  std::string path = temp_path("version");
  // Build a valid arena, then stamp a future layout version into it.
  {
    wfq_queue_t* q = nullptr;
    ASSERT_EQ(wfq_shm_create(path.c_str(), 1 << 20, nullptr, &q), WFQ_OK);
    wfq_shm_detach(q);
  }
  {
    int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    uint32_t future = 0;
    // layout_version sits right after the 8-byte magic (shm_arena.hpp).
    ASSERT_EQ(::pread(fd, &future, sizeof(future), 8),
              static_cast<ssize_t>(sizeof(future)));
    future += 1;
    ASSERT_EQ(::pwrite(fd, &future, sizeof(future), 8),
              static_cast<ssize_t>(sizeof(future)));
    ::close(fd);
  }
  std::vector<char> before;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      before.insert(before.end(), buf, buf + n);
    }
    std::fclose(f);
  }

  wfq_queue_t* q = nullptr;
  EXPECT_EQ(wfq_shm_attach(path.c_str(), &q), WFQ_E_VERSION);
  EXPECT_EQ(q, nullptr);

  std::vector<char> after;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      after.insert(after.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  EXPECT_EQ(before, after)
      << "WFQ_E_VERSION attach modified the incompatible arena";
  std::remove(path.c_str());
}

TEST(CapiErrorPaths, VersionFromGarbageFile) {
  std::string path = temp_path("garbage");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 4096; ++i) std::fputc(0x5a, f);
  std::fclose(f);
  wfq_queue_t* q = nullptr;
  EXPECT_EQ(wfq_shm_attach(path.c_str(), &q), WFQ_E_VERSION);
  std::remove(path.c_str());
}

// ---- shm backend end-to-end through the C surface --------------------------

TEST(CapiShm, CreateAttachRoundTrip) {
  std::string path = temp_path("roundtrip");
  wfq_queue_t* owner = nullptr;
  ASSERT_EQ(wfq_shm_create(path.c_str(), 1 << 20, nullptr, &owner), WFQ_OK);
  ASSERT_GT(wfq_capacity(owner), 0u);
  wfq_handle_t* oh = wfq_handle_acquire(owner);
  ASSERT_NE(oh, nullptr);
  ASSERT_EQ(wfq_enqueue(oh, 101), WFQ_OK);

  wfq_queue_t* peer = nullptr;
  ASSERT_EQ(wfq_shm_attach(path.c_str(), &peer), WFQ_OK);
  wfq_handle_t* ph = wfq_handle_acquire(peer);
  ASSERT_NE(ph, nullptr);
  uint64_t out = 0;
  ASSERT_EQ(wfq_dequeue(ph, &out), 1);
  EXPECT_EQ(out, 101u);
  EXPECT_EQ(wfq_dequeue(ph, &out), 0);

  ASSERT_EQ(wfq_enqueue(ph, 202), WFQ_OK);
  ASSERT_EQ(wfq_dequeue_timed(oh, &out, 1000ull * 1000 * 1000), 1);
  EXPECT_EQ(out, 202u);

  wfq_stats_ex_t st;
  wfq_get_stats_ex(owner, &st);
  EXPECT_EQ(st.peer_deaths, 0u);
  EXPECT_EQ(st.shm_adoptions, 0u);

  wfq_handle_release(ph);
  wfq_shm_detach(peer);
  wfq_handle_release(oh);
  wfq_close(owner);
  EXPECT_EQ(wfq_is_closed(owner), 1);
  wfq_shm_detach(owner);
  std::remove(path.c_str());
}

// SIGKILL-at-injection-point traits, mirroring tests/ipc/shm_crash_test
// (layout-identical to the C API's ShmQueue<> — traits only add hooks).
struct Kill9Injector {
  static constexpr bool kEnabled = true;
  static inline const char* arm_point = nullptr;
  struct SuppressScope {
    SuppressScope() noexcept {}
  };
  static void inject(const char* point) {
    if (arm_point != nullptr && std::strcmp(point, arm_point) == 0) {
      ::raise(SIGKILL);
    }
  }
};
struct Kill9Traits {
  using Injector = Kill9Injector;
};

// The C API's blocking dequeues must DRIVE recovery, not merely poll: a
// peer process SIGKILLed holding a dequeue ticket strands its value until
// some survivor runs recover(), and a C-API consumer parked in
// wfq_dequeue_timed/wfq_dequeue_wait is exactly that survivor. Without the
// recover() call in the slice loop this test never gets the value back.
TEST(CapiShm, BlockedDequeueRescuesValueStrandedByKilledPeer) {
  std::string path = temp_path("deadpeer");
  wfq_queue_t* owner = nullptr;
  ASSERT_EQ(wfq_shm_create(path.c_str(), 1 << 20, nullptr, &owner), WFQ_OK);
  wfq_handle_t* oh = wfq_handle_acquire(owner);
  ASSERT_NE(oh, nullptr);
  ASSERT_EQ(wfq_enqueue(oh, 99), WFQ_OK);

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    wfq::ipc::ShmQueue<Kill9Traits> cq;
    if (wfq::ipc::ShmQueue<Kill9Traits>::attach(path.c_str(), &cq) !=
        wfq::ipc::ArenaStatus::kOk) {
      _exit(3);
    }
    Kill9Injector::arm_point = "shm_deq_ticketed";
    std::uint64_t v = 0;
    cq.dequeue(&v);  // dies holding the only ticket that visits the cell
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // No explicit recover() anywhere on the parent side: the blocking
  // dequeue's slice loop must detect the death and rescue the value.
  uint64_t out = 0;
  ASSERT_EQ(wfq_dequeue_timed(oh, &out, 10ull * 1000 * 1000 * 1000), 1)
      << "stranded value never rescued: runtime path does not run recover()";
  EXPECT_EQ(out, 99u);

  wfq_stats_ex_t st;
  wfq_get_stats_ex(owner, &st);
  EXPECT_GE(st.peer_deaths, 1u);
  EXPECT_GE(st.shm_adoptions, 1u);

  wfq_handle_release(oh);
  wfq_shm_detach(owner);
  std::remove(path.c_str());
}

}  // namespace
