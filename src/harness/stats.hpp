// Statistics for the benchmark methodology of §5.1 (Georges et al.,
// OOPSLA'07 "Statistically Rigorous Java Performance Evaluation"):
// coefficient of variation for steady-state detection, and Student-t
// confidence intervals over invocation means.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace wfq::bench {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / double(xs.size());
}

/// Sample standard deviation (n-1 denominator).
inline double sample_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / double(xs.size() - 1));
}

/// Coefficient of variation; 0 for degenerate inputs.
inline double cov(const std::vector<double>& xs) {
  double m = mean(xs);
  if (m == 0.0) return 0.0;
  return sample_stddev(xs) / m;
}

/// Two-sided 97.5% quantile of Student's t distribution (for a 95%
/// confidence interval) by degrees of freedom. Exact table values for
/// df <= 30; the normal-approximation constant beyond.
inline double t_critical_95(std::size_t df) {
  static constexpr double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  return 1.96;
}

/// A 95% confidence interval over a set of invocation means.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t n = 0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  /// True if `other`'s CI does not overlap this one (a statistically
  /// meaningful difference under the Georges et al. methodology).
  bool distinct_from(const ConfidenceInterval& other) const {
    return lo() > other.hi() || hi() < other.lo();
  }
};

/// CI half-width: t_{0.975, n-1} * s / sqrt(n) — §5.1's formula.
inline ConfidenceInterval confidence_interval_95(
    const std::vector<double>& invocation_means) {
  ConfidenceInterval ci;
  ci.n = invocation_means.size();
  ci.mean = mean(invocation_means);
  if (ci.n < 2) return ci;
  double s = sample_stddev(invocation_means);
  ci.half_width = t_critical_95(ci.n - 1) * s / std::sqrt(double(ci.n));
  return ci;
}

/// Steady-state window: the first index i >= window-1 such that the COV of
/// xs[i-window+1 .. i] is below `threshold`; if none, the window with the
/// lowest COV (the paper's fallback). Returns the window's start index.
inline std::size_t steady_state_window_start(const std::vector<double>& xs,
                                             std::size_t window,
                                             double threshold) {
  assert(xs.size() >= window && window >= 1);
  std::size_t best_start = 0;
  double best_cov = std::numeric_limits<double>::infinity();
  for (std::size_t end = window; end <= xs.size(); ++end) {
    std::vector<double> w(xs.begin() + (end - window), xs.begin() + end);
    double c = cov(w);
    if (c < threshold) return end - window;
    if (c < best_cov) {
      best_cov = c;
      best_start = end - window;
    }
  }
  return best_start;
}

}  // namespace wfq::bench
