// Portable futex: block a thread on a 32-bit word until another thread
// changes it and issues a wake.
//
// Two interchangeable implementations behind one static interface:
//
//  * `LinuxFutex` — the real `futex(2)` syscall (FUTEX_WAIT_PRIVATE /
//    FUTEX_WAKE_PRIVATE). Zero userspace state; the kernel re-checks the
//    word under its own lock, so the classic "value changed between my
//    check and my sleep" race cannot lose a wakeup.
//  * `SharedFutex` — the same syscall WITHOUT the PRIVATE flag, so the
//    kernel keys the wait queue by the *physical page* instead of the
//    (mm, address) pair. That is what lets independent processes park on
//    and wake through a word living in a shared-memory arena (src/ipc/).
//    PRIVATE is purely a fast-path hint; both variants are correct within
//    one process, and a PRIVATE wait can never be woken by a shared wake
//    (or vice versa) — they hash into different kernel buckets, which the
//    futex unit test asserts.
//  * `PortableFutex` — a bucketed parking lot (hashed mutex + condvar
//    pairs). The waiter re-checks the word *under the bucket mutex* and a
//    waker locks the bucket before notifying, which closes the same race
//    by mutual exclusion. Used on non-Linux hosts; always compiled (and
//    tested) so it cannot bitrot. (`std::atomic::wait` is not usable here:
//    it has no timed variant, which `pop_wait_for` needs.)
//
// Both may return spuriously; callers must re-check their predicate in a
// loop (EventCount does).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#endif

namespace wfq::sync {

using WaitClock = std::chrono::steady_clock;

/// Why a futex wait returned. The distinction matters for the blocking
/// layer's `*_spurious_wakeups` stats (docs/OBSERVABILITY.md): a value
/// mismatch (EAGAIN) means the word already moved — i.e. a notify really
/// happened — so lumping it with EINTR as "woken" (the pre-tri-state
/// behaviour) made the spurious counter lie in both directions.
enum class WakeCause : std::uint8_t {
  kNotified,  ///< woken by a wake, or the word had already changed (EAGAIN)
  kTimeout,   ///< the deadline expired (timed waits only)
  kSpurious,  ///< returned with no wake and no timeout (EINTR, cv spurious)
};

#if defined(__linux__)

/// futex(2)-backed implementation. `word` must be a naturally aligned
/// lock-free 32-bit atomic (guaranteed for std::atomic<uint32_t> on every
/// platform this repo targets; asserted below).
///
/// `Private` selects the FUTEX_PRIVATE_FLAG: true keys the kernel wait
/// queue by (mm, virtual address) — the fast path for a single process —
/// while false keys it by physical page, which is what cross-process
/// parking on a shared-memory word requires. The flag must match between
/// waiter and waker: a PRIVATE wait and a shared wake land in different
/// kernel buckets and never see each other.
template <bool Private>
struct LinuxFutexImpl {
  static constexpr const char* kName =
      Private ? "linux-futex" : "linux-futex-shared";
  static constexpr bool kPrivate = Private;
  static constexpr int kWaitOp =
      Private ? FUTEX_WAIT_PRIVATE : FUTEX_WAIT;
  static constexpr int kWakeOp =
      Private ? FUTEX_WAKE_PRIVATE : FUTEX_WAKE;

  /// Sleep while `*word == expected`. Never consumes a wake it did not
  /// receive. kNotified covers both a delivered wake and a value mismatch
  /// (EAGAIN: the word moved before we slept, i.e. a notify already
  /// happened); kSpurious is EINTR — the caller woke for no queue-related
  /// reason. Callers re-check their predicate either way.
  static WakeCause wait(const std::atomic<uint32_t>& word, uint32_t expected) {
    long rc = syscall(SYS_futex, address_of(word), kWaitOp, expected,
                      nullptr, nullptr, 0);
    if (rc == 0) return WakeCause::kNotified;
    return errno == EAGAIN ? WakeCause::kNotified : WakeCause::kSpurious;
  }

  /// Timed variant. kTimeout iff the deadline passed without a wake (the
  /// caller still re-checks its predicate: a wake and a timeout can race,
  /// and the kernel reports whichever it committed first).
  static WakeCause wait_until(const std::atomic<uint32_t>& word,
                              uint32_t expected,
                              WaitClock::time_point deadline) {
    auto now = WaitClock::now();
    if (now >= deadline) return WakeCause::kTimeout;
    auto rel = deadline - now;
    struct timespec ts;
    auto secs = std::chrono::duration_cast<std::chrono::seconds>(rel);
    ts.tv_sec = static_cast<time_t>(secs.count());
    ts.tv_nsec = static_cast<long>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(rel - secs)
            .count());
    long rc = syscall(SYS_futex, address_of(word), kWaitOp,
                      expected, &ts, nullptr, 0);
    if (rc == 0) return WakeCause::kNotified;
    if (errno == ETIMEDOUT) return WakeCause::kTimeout;
    return errno == EAGAIN ? WakeCause::kNotified : WakeCause::kSpurious;
  }

  /// Wake up to `n` waiters blocked on `word`.
  static void wake(const std::atomic<uint32_t>& word, uint32_t n) {
    (void)syscall(SYS_futex, address_of(word), kWakeOp, n, nullptr,
                  nullptr, 0);
  }

  static void wake_all(const std::atomic<uint32_t>& word) {
    wake(word, ~uint32_t{0} >> 1);  // INT_MAX: kernel caps the count anyway
  }

 private:
  static uint32_t* address_of(const std::atomic<uint32_t>& word) {
    static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t),
                  "futex word must be exactly the atomic's storage");
    // The kernel reads the word with its own atomics; casting away the
    // C++ atomic wrapper is the established idiom (same layout).
    return reinterpret_cast<uint32_t*>(
        const_cast<std::atomic<uint32_t>*>(&word));
  }
};

/// Process-private futex: the historical name, and the default everywhere
/// a queue parks its own threads.
using LinuxFutex = LinuxFutexImpl<true>;

/// Process-shared futex for words living in a shared-memory mapping
/// (src/ipc/ arenas). Waiters in one process are woken by wakes issued in
/// another, provided both map the same physical page.
using SharedFutex = LinuxFutexImpl<false>;

#endif  // __linux__

/// Parking-lot fallback: waiters hash their word's address into a small
/// table of (mutex, condvar) buckets. Collisions only cause extra spurious
/// wakeups (notify_all per bucket), never lost ones.
struct PortableFutex {
  static constexpr const char* kName = "portable-parking-lot";

  // A condvar cannot tell a real notify from a spurious return or a
  // bucket-collision over-wake, so this backend never reports kSpurious:
  // everything but a timeout is kNotified. The spurious-wake stats are
  // exact only on the futex backends (documented in OBSERVABILITY.md).
  static WakeCause wait(const std::atomic<uint32_t>& word, uint32_t expected) {
    Bucket& b = bucket(&word);
    std::unique_lock<std::mutex> lk(b.m);
    // Re-check under the bucket lock: a waker that changed the word must
    // take this lock before notifying, so either we see the new value here
    // or its notify happens after we are inside cv.wait.
    if (word.load(std::memory_order_seq_cst) != expected)
      return WakeCause::kNotified;
    b.cv.wait(lk);
    return WakeCause::kNotified;
  }

  static WakeCause wait_until(const std::atomic<uint32_t>& word,
                              uint32_t expected,
                              WaitClock::time_point deadline) {
    Bucket& b = bucket(&word);
    std::unique_lock<std::mutex> lk(b.m);
    if (word.load(std::memory_order_seq_cst) != expected)
      return WakeCause::kNotified;
    return b.cv.wait_until(lk, deadline) == std::cv_status::no_timeout
               ? WakeCause::kNotified
               : WakeCause::kTimeout;
  }

  static void wake(const std::atomic<uint32_t>& word, uint32_t /*n*/) {
    // Buckets are shared between addresses, so a targeted wake_one could
    // deliver its one notify to a waiter parked on a *different* word and
    // strand ours: always notify the whole bucket (over-waking is merely a
    // spurious wakeup for the others).
    wake_all(word);
  }

  static void wake_all(const std::atomic<uint32_t>& word) {
    Bucket& b = bucket(&word);
    {
      // Lock-unlock handshake: a waiter between its word re-check and
      // cv.wait holds the mutex, so our notify cannot slip into that gap.
      std::lock_guard<std::mutex> g(b.m);
    }
    b.cv.notify_all();
  }

 private:
  struct Bucket {
    std::mutex m;
    std::condition_variable cv;
  };

  static Bucket& bucket(const void* addr) {
    static Bucket table[kBuckets];
    auto h = reinterpret_cast<uintptr_t>(addr);
    h ^= h >> 7;  // words are >= 4-byte aligned; mix the useful bits down
    return table[(h >> 2) & (kBuckets - 1)];
  }

  static constexpr std::size_t kBuckets = 64;  // power of two
};

#if defined(__linux__)
using Futex = LinuxFutex;
#else
using Futex = PortableFutex;
#endif

}  // namespace wfq::sync
