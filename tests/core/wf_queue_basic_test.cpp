// Single-threaded semantic tests of the wait-free queue: FIFO order, empty
// semantics, patience settings, and cross-segment operation.
#include "core/wf_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wfq {
namespace {

struct TinySegTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 8;
};

struct LlscTraits : DefaultWfTraits {
  using Faa = EmulatedFaa;
};

struct ScTraits : DefaultWfTraits {
  static constexpr bool kConservativeOrdering = true;
};

TEST(WfQueueBasic, StartsEmpty) {
  WFQueue<int> q;
  auto h = q.get_handle();
  EXPECT_EQ(q.dequeue(h), std::nullopt);
}

TEST(WfQueueBasic, SingleElementRoundTrip) {
  WFQueue<int> q;
  auto h = q.get_handle();
  q.enqueue(h, 42);
  auto v = q.dequeue(h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(q.dequeue(h), std::nullopt);
}

TEST(WfQueueBasic, FifoOrderPreserved) {
  WFQueue<int> q;
  auto h = q.get_handle();
  for (int i = 0; i < 1000; ++i) q.enqueue(h, i);
  for (int i = 0; i < 1000; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.dequeue(h), std::nullopt);
}

TEST(WfQueueBasic, InterleavedEnqueueDequeue) {
  WFQueue<int> q;
  auto h = q.get_handle();
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < round % 7 + 1; ++i) q.enqueue(h, next_in++);
    for (int i = 0; i < round % 5 + 1 && next_out < next_in; ++i) {
      auto v = q.dequeue(h);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
  }
  while (next_out < next_in) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, next_out++);
  }
  EXPECT_EQ(q.dequeue(h), std::nullopt);
}

TEST(WfQueueBasic, ReusableAfterObservedEmpty) {
  // Dequeuing from an empty queue wastes cells (they are marked unusable);
  // the queue must still accept and deliver later values.
  WFQueue<int> q;
  auto h = q.get_handle();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_EQ(q.dequeue(h), std::nullopt);
    q.enqueue(h, round);
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(WfQueueBasic, HeadAndTailIndicesAdvance) {
  WFQueue<int> q;
  auto h = q.get_handle();
  EXPECT_EQ(q.tail_index(), 0u);
  EXPECT_EQ(q.head_index(), 0u);
  q.enqueue(h, 1);
  EXPECT_GE(q.tail_index(), 1u);
  (void)q.dequeue(h);
  EXPECT_GE(q.head_index(), 1u);
}

TEST(WfQueueBasic, ZeroPatienceStillCorrectSequentially) {
  // WF-0: every operation makes one fast-path attempt, then helps itself
  // via the slow path on failure. Sequentially the fast path always
  // succeeds, but the configuration must be accepted end-to-end.
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<int> q(cfg);
  auto h = q.get_handle();
  for (int i = 0; i < 100; ++i) q.enqueue(h, i);
  for (int i = 0; i < 100; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(WfQueueBasic, CrossesSegmentBoundaries) {
  WFQueue<int, TinySegTraits> q;
  auto h = q.get_handle();
  constexpr int kCount = 8 * 50 + 3;  // many 8-cell segments
  for (int i = 0; i < kCount; ++i) q.enqueue(h, i);
  EXPECT_GT(q.live_segments(), 1u);
  for (int i = 0; i < kCount; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(WfQueueBasic, EmulatedFaaModeWorks) {
  // The paper's Power7 configuration: FAA synthesized from a CAS loop.
  WFQueue<int, LlscTraits> q;
  auto h = q.get_handle();
  for (int i = 0; i < 500; ++i) q.enqueue(h, i);
  for (int i = 0; i < 500; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(WfQueueBasic, ConservativeOrderingModeWorks) {
  WFQueue<int, ScTraits> q;
  auto h = q.get_handle();
  for (int i = 0; i < 500; ++i) q.enqueue(h, i);
  for (int i = 0; i < 500; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(WfQueueBasic, StatsCountFastPathOps) {
  WFQueue<int> q;
  auto h = q.get_handle();
  for (int i = 0; i < 10; ++i) q.enqueue(h, i);
  for (int i = 0; i < 10; ++i) (void)q.dequeue(h);
  (void)q.dequeue(h);  // EMPTY
  OpStats s = q.stats();
  EXPECT_EQ(s.enqueues(), 10u);
  EXPECT_EQ(s.dequeues(), 11u);
  EXPECT_EQ(s.deq_empty.load(), 1u);
  // Sequential execution: everything on the fast path.
  EXPECT_EQ(s.enq_slow.load(), 0u);
  EXPECT_EQ(s.deq_slow.load(), 0u);
  q.reset_stats();
  EXPECT_EQ(q.stats().enqueues(), 0u);
}

TEST(WfQueueBasic, ManyValuesThroughBoxedStrings) {
  WFQueue<std::string> q;
  auto h = q.get_handle();
  for (int i = 0; i < 200; ++i) q.enqueue(h, "value-" + std::to_string(i));
  for (int i = 0; i < 200; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "value-" + std::to_string(i));
  }
}

TEST(WfQueueBasic, DestructorDrainsBoxedLeftovers) {
  // Leak-checked indirectly via a counting payload type.
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    Counted(const Counted&) { ++live; }
    Counted(Counted&&) noexcept { ++live; }
    ~Counted() { --live; }
  };
  {
    WFQueue<Counted> q;
    auto h = q.get_handle();
    for (int i = 0; i < 32; ++i) q.enqueue(h, Counted{});
    (void)q.dequeue(h);
  }
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace wfq
