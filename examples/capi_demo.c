/* Pure-C demonstration of the wait-free queue bindings: compiled as C
 * (this file is C, not C++), proving the extern "C" surface links.
 *
 * Producers push tagged values; consumers block in wfq_dequeue_wait (no
 * spinning) until main closes the queue, at which point every consumer
 * drains its share and exits on the 0 ("closed and drained") return.
 * Conservation is checked across the full close/drain lifecycle.
 *
 *   $ ./capi_demo
 */
#include <inttypes.h>
#include <pthread.h>
#include <stdio.h>

#include "capi/wfq_c.h"

#define N_PRODUCERS 3
#define N_CONSUMERS 3
#define OPS_PER_PRODUCER 20000

static wfq_queue_t* queue;
static uint64_t produced_sum[N_PRODUCERS];
static uint64_t consumed_sum[N_CONSUMERS];

static void* producer(void* arg) {
  long tid = (long)arg;
  wfq_handle_t* h = wfq_handle_acquire(queue);
  int i;
  for (i = 0; i < OPS_PER_PRODUCER; ++i) {
    uint64_t v = ((uint64_t)tid << 32) | (uint64_t)(i + 1);
    if (wfq_enqueue(h, v) != 0) {
      fprintf(stderr, "enqueue rejected unexpectedly\n");
      break;
    }
    produced_sum[tid] += v;
  }
  wfq_handle_release(h);
  return 0;
}

static void* consumer(void* arg) {
  long tid = (long)arg;
  wfq_handle_t* h = wfq_handle_acquire(queue);
  uint64_t out;
  /* Blocks while the queue is open and empty; returns 0 only once the
   * queue is closed AND every residual item has been handed out. */
  while (wfq_dequeue_wait(h, &out) == 1) {
    consumed_sum[tid] += out;
  }
  wfq_handle_release(h);
  return 0;
}

/* Producer for the bounded act: wfq_enqueue may return WFQ_E_FULL, so
 * this one parks in wfq_enqueue_wait instead of treating full as fatal. */
static void* bounded_producer(void* arg) {
  long tid = (long)arg;
  wfq_handle_t* h = wfq_handle_acquire(queue);
  int i;
  for (i = 0; i < OPS_PER_PRODUCER; ++i) {
    uint64_t v = ((uint64_t)tid << 32) | (uint64_t)(i + 1);
    if (wfq_enqueue_wait(h, v) != WFQ_OK) {
      fprintf(stderr, "bounded enqueue rejected unexpectedly\n");
      break;
    }
    produced_sum[tid] += v;
  }
  wfq_handle_release(h);
  return 0;
}

/* Second act: the same pipeline through a bounded backend. Capacity 64
 * means producers outrun consumers almost immediately; wfq_enqueue_wait
 * parks them (futex, not spin) until space frees, so memory stays hard-
 * bounded while conservation still holds. */
static int bounded_backend_demo(void) {
  wfq_options_t opt;
  pthread_t producers[N_PRODUCERS];
  pthread_t consumers[N_CONSUMERS];
  long t;
  uint64_t produced = 0, consumed = 0;

  wfq_options_init(&opt);
  opt.backend = WFQ_BACKEND_WCQ;
  opt.capacity = 64;
  queue = wfq_create_ex(&opt);
  if (!queue) return 1;
  for (t = 0; t < N_PRODUCERS; ++t) produced_sum[t] = 0;
  for (t = 0; t < N_CONSUMERS; ++t) consumed_sum[t] = 0;

  for (t = 0; t < N_CONSUMERS; ++t) {
    pthread_create(&consumers[t], 0, consumer, (void*)t);
  }
  for (t = 0; t < N_PRODUCERS; ++t) {
    pthread_create(&producers[t], 0, bounded_producer, (void*)t);
  }
  for (t = 0; t < N_PRODUCERS; ++t) pthread_join(producers[t], 0);
  wfq_close(queue);
  for (t = 0; t < N_CONSUMERS; ++t) pthread_join(consumers[t], 0);

  for (t = 0; t < N_PRODUCERS; ++t) produced += produced_sum[t];
  for (t = 0; t < N_CONSUMERS; ++t) consumed += consumed_sum[t];
  printf("C API (wCQ, capacity %" PRIu64 "): conservation %s\n",
         (uint64_t)wfq_capacity(queue),
         produced == consumed ? "OK" : "FAILED");
  wfq_destroy(queue);
  return produced == consumed ? 0 : 1;
}

int main(void) {
  pthread_t producers[N_PRODUCERS];
  pthread_t consumers[N_CONSUMERS];
  long t;
  uint64_t produced = 0, consumed = 0;
  wfq_stats_t stats;

  queue = wfq_create_default();
  if (!queue) return 1;

  for (t = 0; t < N_CONSUMERS; ++t) {
    pthread_create(&consumers[t], 0, consumer, (void*)t);
  }
  for (t = 0; t < N_PRODUCERS; ++t) {
    pthread_create(&producers[t], 0, producer, (void*)t);
  }
  for (t = 0; t < N_PRODUCERS; ++t) {
    pthread_join(producers[t], 0);
  }

  /* All producers done: close. Consumers drain the backlog, then their
   * wfq_dequeue_wait returns 0 and they exit — no sentinel values, no
   * flags, no sleep-loops. */
  wfq_close(queue);
  for (t = 0; t < N_CONSUMERS; ++t) {
    pthread_join(consumers[t], 0);
  }

  for (t = 0; t < N_PRODUCERS; ++t) produced += produced_sum[t];
  for (t = 0; t < N_CONSUMERS; ++t) consumed += consumed_sum[t];

  wfq_get_stats(queue, &stats);
  printf("C API: %" PRIu64 " enqueues, %" PRIu64 " dequeues, conservation %s\n",
         stats.enqueues, stats.dequeues,
         produced == consumed ? "OK" : "FAILED");
  printf("       slow enq %" PRIu64 ", slow deq %" PRIu64 ", empty %" PRIu64
         ", segments freed %" PRIu64 "\n",
         stats.slow_enqueues, stats.slow_dequeues, stats.empty_dequeues,
         stats.segments_freed);
  printf("       parks %" PRIu64 ", spurious wakeups %" PRIu64
         ", notifies %" PRIu64 "\n",
         stats.deq_parks, stats.deq_spurious_wakeups, stats.notify_calls);

  wfq_destroy(queue);
  if (produced != consumed) return 1;

  return bounded_backend_demo();
}
