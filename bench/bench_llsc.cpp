// Figure 2, IBM Power7 series reproduction: the Power7 lacks native FAA, so
// the paper emulates it with an LL/SC retry loop, sacrificing wait-freedom
// (§3.1, §5). This bench runs the same queue with native FAA and with the
// CAS-retry-emulated FAA side by side, quantifying the cost of the paper's
// Power7 configuration on FAA-capable hardware.
#include "bench_common.hpp"

namespace wfq::bench {
namespace {

struct LlscTraits : DefaultWfTraits {
  using Faa = EmulatedFaa;
};

void run_llsc_figure(WorkloadKind kind, const std::string& title) {
  auto threads = thread_counts_from_env();
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = hardware_threads();

  WfConfig wf10;
  wf10.patience = 10;
  WfConfig wf0;
  wf0.patience = 0;
  std::vector<Contender> contenders;
  contenders.push_back(make_wf_contender<DefaultWfTraits>("WF-10/native", wf10));
  contenders.push_back(make_wf_contender<LlscTraits>("WF-10/llsc", wf10));
  contenders.push_back(make_wf_contender<LlscTraits>("WF-0/llsc", wf0));
  contenders.push_back(
      make_contender<baselines::FAAQueue<uint64_t, NativeFaa>>("F&A/native"));
  contenders.push_back(
      make_contender<baselines::FAAQueue<uint64_t, EmulatedFaa>>("F&A/llsc"));
  contenders.push_back(make_contender<baselines::MSQueue<uint64_t>>("MSQUEUE"));
  contenders.push_back(make_contender<baselines::CCQueue<uint64_t>>("CCQUEUE"));

  std::cout << "== " << title << " ==\n";
  std::cout << "(llsc = FAA emulated by a CAS retry loop, the paper's "
               "Power7 configuration; not wait-free)\n\n";
  std::vector<std::string> headers{"threads"};
  for (auto& c : contenders) headers.push_back(c.name);
  Table table(headers);
  for (unsigned t : threads) {
    RunConfig cfg;
    cfg.kind = kind;
    cfg.threads = t;
    cfg.total_ops = ops;
    cfg.use_delay = use_delay;
    std::vector<std::string> row{std::to_string(t) + (t > hw ? "^" : "")};
    for (auto& c : contenders) {
      auto ci = measure(mcfg, [&] { return c.make_invocation(cfg); });
      row.push_back(Table::fmt_ci(ci.mean, ci.half_width));
      std::cerr << "  [llsc] threads=" << t << " " << c.name << ": "
                << Table::fmt_ci(ci.mean, ci.half_width) << " Mops/s\n";
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::cout << std::endl;
}

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  wfq::bench::run_llsc_figure(wfq::bench::WorkloadKind::kPairs,
                              "Figure 2 Power7 analogue: enqueue-dequeue "
                              "pairs, LL/SC-emulated FAA");
  return 0;
}
