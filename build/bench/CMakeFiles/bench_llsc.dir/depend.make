# Empty dependencies file for bench_llsc.
# This may be replaced when dependencies are built.
