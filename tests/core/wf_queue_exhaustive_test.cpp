// Bounded-exhaustive interleaving tests: small scenarios on the wait-free
// queue executed under EVERY hint-granular schedule (see
// support/coop_scheduler.hpp). Each schedule's outcome is checked for
// conservation, FIFO order, and full linearizability.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "checker/queue_checker.hpp"
#include "core/wf_queue_core.hpp"
#include "support/coop_scheduler.hpp"

namespace wfq {
namespace {

struct CoopTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 4;  // segment churn in-scope
  static void interleave_hint() { test::CoopScheduler::hint(); }
};

using Core = WFQueueCore<CoopTraits>;

/// Scenario runner: constructs a fresh queue + pre-registered handles
/// (registration must not happen under the serializing scheduler — it
/// spins on the cleaner lock), executes the bodies under the given
/// schedule, then audits.
struct Scenario {
  std::function<void(Core&, std::vector<Core::Handle*>&,
                     lin::HistoryRecorder&,
                     std::vector<lin::HistoryRecorder::ThreadLog*>&,
                     std::vector<std::function<void()>>&)>
      build;
  unsigned threads;
  unsigned patience = 0;
  int64_t max_garbage = 2;
};

std::size_t explore(const Scenario& sc, std::size_t max_schedules = 20000) {
  test::CoopScheduler sched;
  auto one_run = [&](const std::vector<uint8_t>& decisions,
                     std::vector<uint8_t>* widths) {
    WfConfig cfg;
    cfg.patience = sc.patience;
    cfg.max_garbage = sc.max_garbage;
    Core q(cfg);
    std::vector<Core::Handle*> handles;
    for (unsigned t = 0; t < sc.threads; ++t) {
      handles.push_back(q.register_handle());
    }
    lin::HistoryRecorder rec;
    std::vector<lin::HistoryRecorder::ThreadLog*> logs;
    for (unsigned t = 0; t < sc.threads; ++t) logs.push_back(rec.make_log(t));

    std::vector<std::function<void()>> bodies;
    sc.build(q, handles, rec, logs, bodies);
    ASSERT_EQ(bodies.size(), sc.threads);
    sched.run(std::move(bodies), decisions, widths);

    auto result = lin::check_queue_history(rec.collect());
    ASSERT_TRUE(result.linearizable)
        << result.violation << " under schedule of " << decisions.size()
        << " explicit decisions";
  };
  return test::explore_schedules(one_run, max_schedules);
}

// Recorded op helpers over the raw core (slots are small ints; distinct).
void rec_enq(Core& q, Core::Handle* h, lin::HistoryRecorder::ThreadLog* log,
             uint64_t v) {
  uint64_t ts = log->invoke();
  q.enqueue(h, v);
  log->complete(lin::OpKind::kEnqueue, v, ts);
}
void rec_deq(Core& q, Core::Handle* h, lin::HistoryRecorder::ThreadLog* log) {
  uint64_t ts = log->invoke();
  uint64_t v = q.dequeue(h);
  if (v == Core::kEmpty) {
    log->complete(lin::OpKind::kDequeueEmpty, 0, ts);
  } else {
    log->complete(lin::OpKind::kDequeue, v, ts);
  }
}

TEST(WfExhaustive, EnqueueRacesDequeueOnEmptyQueue) {
  // The livelock scenario of §3.2 (enqueuer vs dequeuer chasing each
  // other), exhaustively: dequeuer must get 1 or a legal EMPTY; 1 must
  // never be lost.
  Scenario sc;
  sc.threads = 2;
  sc.build = [](Core& q, std::vector<Core::Handle*>& h,
                lin::HistoryRecorder&,
                std::vector<lin::HistoryRecorder::ThreadLog*>& logs,
                std::vector<std::function<void()>>& bodies) {
    bodies.push_back([&q, &h, &logs] { rec_enq(q, h[0], logs[0], 1); });
    bodies.push_back([&q, &h, &logs] {
      rec_deq(q, h[1], logs[1]);
      rec_deq(q, h[1], logs[1]);  // second try picks up a value the first
                                  // may have missed; checker audits both
    });
  };
  std::size_t runs = explore(sc);
  EXPECT_GT(runs, 10u) << "exploration degenerated to almost no schedules";
}

TEST(WfExhaustive, TwoEnqueuersTwoValuesEach) {
  // FIFO across racing enqueuers, then a serial drain.
  Scenario sc;
  sc.threads = 3;
  sc.build = [](Core& q, std::vector<Core::Handle*>& h,
                lin::HistoryRecorder&,
                std::vector<lin::HistoryRecorder::ThreadLog*>& logs,
                std::vector<std::function<void()>>& bodies) {
    bodies.push_back([&q, &h, &logs] {
      rec_enq(q, h[0], logs[0], 1);
      rec_enq(q, h[0], logs[0], 2);
    });
    bodies.push_back([&q, &h, &logs] {
      rec_enq(q, h[1], logs[1], 11);
      rec_enq(q, h[1], logs[1], 12);
    });
    bodies.push_back([&q, &h, &logs] {
      for (int i = 0; i < 5; ++i) rec_deq(q, h[2], logs[2]);
    });
  };
  std::size_t runs = explore(sc, 15000);
  EXPECT_GT(runs, 50u);
}

TEST(WfExhaustive, RacingDequeuersShareTwoValues) {
  Scenario sc;
  sc.threads = 3;
  sc.build = [](Core& q, std::vector<Core::Handle*>& h,
                lin::HistoryRecorder&,
                std::vector<lin::HistoryRecorder::ThreadLog*>& logs,
                std::vector<std::function<void()>>& bodies) {
    bodies.push_back([&q, &h, &logs] {
      rec_enq(q, h[0], logs[0], 1);
      rec_enq(q, h[0], logs[0], 2);
    });
    bodies.push_back([&q, &h, &logs] { rec_deq(q, h[1], logs[1]); });
    bodies.push_back([&q, &h, &logs] { rec_deq(q, h[2], logs[2]); });
  };
  std::size_t runs = explore(sc, 15000);
  EXPECT_GT(runs, 50u);
}

TEST(WfExhaustive, PairsWithSegmentChurnAndReclamation) {
  // Each thread enqueues/dequeues enough to cross the 4-cell segment
  // boundary; max_garbage=1 pulls cleanup into the explored schedules.
  Scenario sc;
  sc.threads = 2;
  sc.max_garbage = 1;
  sc.build = [](Core& q, std::vector<Core::Handle*>& h,
                lin::HistoryRecorder&,
                std::vector<lin::HistoryRecorder::ThreadLog*>& logs,
                std::vector<std::function<void()>>& bodies) {
    for (unsigned t = 0; t < 2; ++t) {
      bodies.push_back([&q, &h, &logs, t] {
        for (uint64_t i = 1; i <= 3; ++i) {
          rec_enq(q, h[t], logs[t], (uint64_t(t + 1) << 8) | i);
          rec_deq(q, h[t], logs[t]);
        }
      });
    }
  };
  std::size_t runs = explore(sc, 20000);
  EXPECT_GT(runs, 100u);
}

TEST(WfExhaustive, SchedulerIsDeterministicGivenDecisions) {
  // Replaying the same decision vector must reproduce identical branch
  // widths — the property DFS replay relies on.
  Scenario sc;
  sc.threads = 2;
  sc.build = [](Core& q, std::vector<Core::Handle*>& h,
                lin::HistoryRecorder&,
                std::vector<lin::HistoryRecorder::ThreadLog*>& logs,
                std::vector<std::function<void()>>& bodies) {
    bodies.push_back([&q, &h, &logs] { rec_enq(q, h[0], logs[0], 1); });
    bodies.push_back([&q, &h, &logs] { rec_deq(q, h[1], logs[1]); });
  };

  test::CoopScheduler sched;
  auto run_once = [&](const std::vector<uint8_t>& d,
                      std::vector<uint8_t>* w) {
    WfConfig cfg;
    cfg.patience = 0;
    Core q(cfg);
    std::vector<Core::Handle*> handles{q.register_handle(),
                                       q.register_handle()};
    lin::HistoryRecorder rec;
    std::vector<lin::HistoryRecorder::ThreadLog*> logs{rec.make_log(0),
                                                       rec.make_log(1)};
    std::vector<std::function<void()>> bodies;
    sc.build(q, handles, rec, logs, bodies);
    sched.run(std::move(bodies), d, w);
  };
  std::vector<uint8_t> d{1, 0, 1};
  std::vector<uint8_t> w1, w2;
  run_once(d, &w1);
  run_once(d, &w2);
  EXPECT_EQ(w1, w2);
}

}  // namespace
}  // namespace wfq
