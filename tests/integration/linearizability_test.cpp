// Linearizability testing: record real concurrent histories from every
// queue and feed them to the FIFO checker (the empirical counterpart of the
// paper's §4 proofs). Each configuration runs several seeds; violations are
// reported with the checker's diagnostic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/ccqueue.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "checker/queue_checker.hpp"
#include "common/random.hpp"
#include "core/obstruction_queue.hpp"
#include "core/wf_queue.hpp"

namespace wfq {
namespace {

/// Runs a randomized mixed workload with history recording and checks the
/// result. Values are globally unique by construction.
template <class Queue>
void record_and_check(Queue& q, unsigned threads, unsigned ops_per_thread,
                      unsigned percent_enqueue, uint64_t seed) {
  lin::HistoryRecorder rec;
  std::vector<lin::HistoryRecorder::ThreadLog*> logs;
  for (unsigned t = 0; t < threads; ++t) logs.push_back(rec.make_log(t));

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto h = q.get_handle();
      Xorshift128Plus rng(seed * 31 + t);
      uint64_t next_val = (uint64_t(t) << 32) | 1;
      for (unsigned i = 0; i < ops_per_thread; ++i) {
        if (rng.percent_chance(percent_enqueue)) {
          lin::recorded_enqueue(q, h, logs[t], next_val++);
        } else {
          (void)lin::recorded_dequeue(q, h, logs[t]);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  auto result = lin::check_queue_history(rec.collect());
  EXPECT_TRUE(result.linearizable) << result.violation;
}

struct LinParam {
  unsigned threads;
  unsigned ops;
  unsigned percent_enq;
  uint64_t seed;
};

struct SmallSeg : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 16;
};

class Linearizability : public ::testing::TestWithParam<LinParam> {};

TEST_P(Linearizability, WfQueuePatience10) {
  auto p = GetParam();
  WfConfig cfg;
  cfg.patience = 10;
  cfg.max_garbage = 4;
  WFQueue<uint64_t, SmallSeg> q(cfg);
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, WfQueuePatience0) {
  auto p = GetParam();
  WfConfig cfg;
  cfg.patience = 0;
  cfg.max_garbage = 4;
  WFQueue<uint64_t> q(cfg);
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, MsQueue) {
  auto p = GetParam();
  baselines::MSQueue<uint64_t> q;
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, Lcrq) {
  auto p = GetParam();
  baselines::LCRQ<uint64_t, 32> q;
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, CcQueue) {
  auto p = GetParam();
  baselines::CCQueue<uint64_t> q;
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, MutexQueue) {
  auto p = GetParam();
  baselines::MutexQueue<uint64_t> q;
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, KpQueue) {
  auto p = GetParam();
  baselines::KPQueue<uint64_t> q(/*max_threads=*/16);
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, SimQueue) {
  auto p = GetParam();
  baselines::SimQueue<uint64_t> q(/*max_threads=*/16);
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

TEST_P(Linearizability, ObstructionQueue) {
  auto p = GetParam();
  ObstructionQueue<uint64_t> q(std::size_t{1} << 20);
  record_and_check(q, p.threads, p.ops, p.percent_enq, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, Linearizability,
    ::testing::Values(LinParam{4, 800, 50, 1},    // balanced
                      LinParam{4, 800, 50, 2},    // balanced, another seed
                      LinParam{4, 800, 70, 3},    // enqueue-heavy
                      LinParam{4, 800, 30, 4},    // dequeue-heavy (EMPTYs)
                      LinParam{8, 500, 50, 5},    // oversubscribed
                      LinParam{2, 1500, 50, 6}),  // low-thread long run
    [](const ::testing::TestParamInfo<LinParam>& info) {
      auto& p = info.param;
      return "t" + std::to_string(p.threads) + "e" +
             std::to_string(p.percent_enq) + "s" + std::to_string(p.seed);
    });

TEST(LinearizabilitySanity, CheckerCatchesABrokenQueue) {
  // A deliberately broken "queue" (LIFO stack) must be rejected — this
  // guards against the checker silently passing everything.
  struct BrokenStack {
    struct Handle {};
    Handle get_handle() { return {}; }
    std::mutex mu;
    std::vector<uint64_t> items;
    void enqueue(Handle&, uint64_t v) {
      std::lock_guard<std::mutex> g(mu);
      items.push_back(v);
    }
    std::optional<uint64_t> dequeue(Handle&) {
      std::lock_guard<std::mutex> g(mu);
      if (items.empty()) return std::nullopt;
      uint64_t v = items.back();
      items.pop_back();
      return v;
    }
  };
  BrokenStack q;
  lin::HistoryRecorder rec;
  auto* log = rec.make_log(0);
  auto h = q.get_handle();
  lin::recorded_enqueue(q, h, log, 1);
  lin::recorded_enqueue(q, h, log, 2);
  (void)lin::recorded_dequeue(q, h, log);  // returns 2: FIFO violation
  (void)lin::recorded_dequeue(q, h, log);
  auto result = lin::check_queue_history(rec.collect());
  EXPECT_FALSE(result.linearizable);
}

}  // namespace
}  // namespace wfq
