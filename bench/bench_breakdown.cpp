// Table 2 reproduction: "Breakdown of different execution passes of WF-0"
// — the percentage of enqueues completed on the slow path, dequeues
// completed on the slow path, and dequeues returning EMPTY, under the
// 50%-enqueues benchmark, at thread counts up to 4x oversubscription
// (the paper ran 36/72/144/288 on a 72-hardware-thread Haswell).
#include <cinttypes>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  uint64_t ops = ops_from_env(400'000);
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();
  // WFQ_PATIENCE overrides the paper's WF-0 configuration (e.g. 10 shows
  // how far the slow-path share drops with the practical setting).
  unsigned patience = 0;
  if (const char* s = std::getenv("WFQ_PATIENCE")) {
    patience = unsigned(std::strtoul(s, nullptr, 10));
  }

  // The paper's points: 0.5x, 1x, 2x, 4x the hardware thread count
  // (36/72/144/288 on their 72-thread machine), floored at 1.
  std::vector<unsigned> threads;
  if (const char* s = std::getenv("WFQ_THREADS")) {
    threads = thread_counts_from_env();
    (void)s;
  } else {
    for (unsigned m : {1u, 2u, 4u, 8u}) {
      unsigned t = std::max(m, hw * m / 2);  // paper: 0.5x..4x hw threads
      if (threads.empty() || threads.back() != t) threads.push_back(t);
    }
  }

  std::cout << "== Table 2: breakdown of execution paths, WF-" << patience
            << ", 50%-enqueues ==\n";
  std::cout << "ops=" << ops << " delay=" << (use_delay ? "on" : "off")
            << " (paper, 72-hw-thread Haswell @36/72/144/288: slow enq "
               "0.002-0.028%, slow deq 1.5-4.0%, empty <= 0.003%)\n\n";

  Table table({"threads", "% slow-path enq", "% slow-path deq",
               "% empty deq", "enqueues", "dequeues"});
  for (unsigned t : threads) {
    wfq::WfConfig wf;
    wf.patience = patience;  // default 0 = the paper's WF-0
    wfq::WFQueue<uint64_t> q(wf);
    RunConfig cfg;
    cfg.kind = WorkloadKind::kPercentEnq;
    cfg.threads = t;
    cfg.total_ops = ops;
    cfg.percent_enqueue = 50;
    cfg.use_delay = use_delay;
    (void)run_workload(q, cfg);
    auto s = q.stats();
    table.add_row({std::to_string(t) + (t > hw ? "^" : ""),
                   Table::fmt(s.pct_slow_enq(), 3),
                   Table::fmt(s.pct_slow_deq(), 3),
                   Table::fmt(s.pct_empty_deq(), 3),
                   std::to_string(s.enqueues()),
                   std::to_string(s.dequeues())});
    std::cerr << "  [table2] threads=" << t
              << " slow_enq%=" << Table::fmt(s.pct_slow_enq(), 3)
              << " slow_deq%=" << Table::fmt(s.pct_slow_deq(), 3)
              << " empty%=" << Table::fmt(s.pct_empty_deq(), 3) << "\n";
  }
  table.print();
  return 0;
}
