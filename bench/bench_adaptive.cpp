// Adaptive fast-path tuning A/B (ALGORITHM.md §14): the same workload run
// with the knob fixed and with the controller driving it, side by side.
//
// Part A — PATIENCE: the Figure-2 pairs workload over WF-10 (the paper's
// fixed default), WF-INF (never give up on the fast path) and WF-ADAPT
// (per-handle EWMA controller retuning patience from the observed
// slow-path ratio). With --json each point records throughput, the 95% CI
// half-width and pooled p50/p99/p999 operation latency, so the committed
// BENCH_adaptive.json shows the adaptive deltas — throughput AND tail —
// at every swept thread count.
//
// Part B — bulk-k: "bulk pairs" with a deliberately large requested batch
// (n = 64). Fixed mode hammers the queue with the full request every
// time; adaptive mode lets the AIMD BulkKController shrink the reserved
// batch whenever dequeue_bulk comes back short (unclaimed cells are pure
// waste: each costs a cell plus helping traffic) and regrow it while
// batches fill. Reported Mops/s counts elements, per-element latency is
// bulk-call time / n.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "harness/barrier.hpp"
#include "harness/latency.hpp"

namespace wfq::bench {
namespace {

constexpr std::size_t kBulkRequest = 64;

/// One iteration of the bulk-pairs workload at a fixed requested batch
/// size; returns raw element throughput in Mops/s. Identical shape to
/// bench_bulk's driver — the only variable is the queue's patience_mode.
double run_bulk_ab(WFQueue<uint64_t>& q, unsigned threads,
                   uint64_t elems_per_thread, bool use_delay, uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(threads), stop(threads);
  std::vector<Clock::time_point> t_begin(threads), t_end(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)pin_to_cpu(t);
      auto h = q.get_handle();
      WorkDelay delay = WorkDelay::paper_default(seed * 1315423911u + t);
      std::vector<uint64_t> vals(kBulkRequest), out(kBulkRequest);
      const uint64_t batches =
          (elems_per_thread + kBulkRequest - 1) / kBulkRequest;
      uint64_t seq = 0;
      start.arrive_and_wait();
      t_begin[t] = Clock::now();
      for (uint64_t b = 0; b < batches; ++b) {
        for (std::size_t j = 0; j < kBulkRequest; ++j) {
          vals[j] = (uint64_t(t) << 40) | ++seq;
        }
        q.enqueue_bulk(h, vals.data(), kBulkRequest);
        if (use_delay) delay.spin();
        // Drain what we produced; short returns are exactly the signal
        // the adaptive controller feeds on.
        std::size_t got = 0;
        while (got < kBulkRequest) {
          std::size_t r = q.dequeue_bulk(h, out.data() + got,
                                         kBulkRequest - got);
          got += r;
          if (r == 0) break;
        }
        if (use_delay) delay.spin();
      }
      t_end[t] = Clock::now();
      stop.arrive_and_wait();
    });
  }
  for (auto& w : workers) w.join();
  Clock::time_point first = t_begin[0], last = t_end[0];
  for (unsigned t = 1; t < threads; ++t) {
    if (t_begin[t] < first) first = t_begin[t];
    if (t_end[t] > last) last = t_end[t];
  }
  const double secs = std::chrono::duration<double>(last - first).count();
  const uint64_t elems = uint64_t(threads) *
      ((elems_per_thread + kBulkRequest - 1) / kBulkRequest) * kBulkRequest;
  return secs > 0 ? double(2 * elems) / secs / 1e6 : 0.0;
}

/// Per-element latency of the same workload (bulk-call time / n, pooled
/// enqueue+dequeue).
LatencyResult bulk_ab_latency(WFQueue<uint64_t>& q, unsigned threads,
                              uint64_t elems_per_thread) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(threads);
  std::vector<std::vector<uint64_t>> samples(threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)pin_to_cpu(t);
      auto h = q.get_handle();
      std::vector<uint64_t> vals(kBulkRequest), out(kBulkRequest);
      const uint64_t batches =
          (elems_per_thread + kBulkRequest - 1) / kBulkRequest;
      auto& mine = samples[t];
      mine.reserve(2 * batches);
      uint64_t seq = 0;
      start.arrive_and_wait();
      for (uint64_t b = 0; b < batches; ++b) {
        for (std::size_t j = 0; j < kBulkRequest; ++j) {
          vals[j] = (uint64_t(t) << 40) | ++seq;
        }
        auto t0 = Clock::now();
        q.enqueue_bulk(h, vals.data(), kBulkRequest);
        auto t1 = Clock::now();
        (void)q.dequeue_bulk(h, out.data(), kBulkRequest);
        auto t2 = Clock::now();
        mine.push_back(
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t1 - t0).count()) / kBulkRequest);
        mine.push_back(
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t2 - t1).count()) / kBulkRequest);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<uint64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  return summarize_latencies(std::move(all));
}

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  using namespace wfq::bench;
  bench_main_init(argc, argv);
  ::setenv("WFQ_NO_DELAY", "1", /*overwrite=*/0);

  // ---- Part A: fixed vs adaptive PATIENCE on the Figure-2 pairs workload.
  wfq::WfConfig wf10;
  wf10.patience = 10;
  wfq::WfConfig wfinf;
  wfinf.patience = 1u << 20;
  wfq::WfConfig wfadapt;
  wfadapt.patience = 10;
  wfadapt.patience_mode = wfq::PatienceMode::kAdaptive;
  std::vector<Contender> ab;
  ab.push_back(make_wf_contender<wfq::DefaultWfTraits>("WF-10", wf10));
  ab.push_back(make_wf_contender<wfq::DefaultWfTraits>("WF-INF", wfinf));
  ab.push_back(make_wf_contender<wfq::DefaultWfTraits>("WF-ADAPT", wfadapt));
  run_figure("adaptive_patience", WorkloadKind::kPairs, 50, std::move(ab));

  // ---- Part B: fixed vs adaptive bulk-k at a large requested batch.
  auto threads = thread_counts_from_env();
  auto mcfg = MethodologyConfig::from_env();
  const uint64_t elems = ops_from_env();
  const bool use_delay = delay_enabled_from_env();
  const unsigned hw = wfq::hardware_threads();

  std::cout << "== Bulk batch sizing: fixed request vs AIMD controller "
               "(n=" << kBulkRequest << ") ==\n";
  Table table({"threads", "WF-10 fixed (Mops/s)", "WF-ADAPT (Mops/s)"});
  for (unsigned t : threads) {
    const uint64_t per_thread = std::max<uint64_t>(kBulkRequest, elems / t);
    std::vector<std::string> row{std::to_string(t) + (t > hw ? "^" : "")};
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      wfq::WfConfig cfg = adaptive ? wfadapt : wf10;
      auto ci = measure(mcfg, [&] {
        auto q = std::make_shared<wfq::WFQueue<uint64_t>>(cfg);
        return std::function<double()>([q, t, per_thread, use_delay] {
          return run_bulk_ab(*q, t, per_thread, use_delay, 0xab);
        });
      });
      wfq::WFQueue<uint64_t> lq(cfg);
      LatencyResult lat = bulk_ab_latency(
          lq, t, std::max<uint64_t>(4 * kBulkRequest, per_thread / 4));
      row.push_back(Table::fmt_ci(ci.mean, ci.half_width));
      const std::string name =
          adaptive ? "WF-ADAPT bulk n=64" : "WF-10 bulk n=64";
      json_sink().record("adaptive_bulk", name, t, ci.mean, double(lat.p50),
                         double(lat.p99), double(lat.p999), ci.half_width);
      std::cerr << "  [adaptive_bulk] " << name << " threads=" << t << ": "
                << Table::fmt_ci(ci.mean, ci.half_width) << " Mops/s  p99="
                << lat.p99 << "ns\n";
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
