// End-to-end tests of the observability layer through the real queue stack:
// per-op histogram coverage at SampleShift=0, exact agreement between
// trace-ring totals and the OpStats counters they shadow (slow paths, OOM
// seam under the scripted injector, blocking-layer parks), snapshot event
// ordering, reset_obs, and the Chrome trace exporter's file contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_core.hpp"
#include "fault/fault_test_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "support/wf_test_peek.hpp"
#include "sync/blocking_queue.hpp"

namespace wfq {
namespace {

/// Production traits with every operation sampled (SampleShift = 0), so
/// histogram counts can be asserted exactly.
struct ObsTestTraits : DefaultWfTraits {
  using Metrics = obs::ObsMetrics<0>;
};

/// Same, plus the scripted injector and small segments so the OOM seam is
/// reachable with tens of operations.
struct ObsFaultTraits : DefaultWfTraits {
  using Injector = fault::ScriptedInjector;
  using Metrics = obs::ObsMetrics<0>;
  static constexpr std::size_t kSegmentSize = 64;
};

uint64_t rd(const std::atomic<uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

TEST(ObsQueue, HistogramsCoverEveryOperationAtShiftZero) {
  ObsTestTraits::Metrics::global_ring().reset();
  WFQueue<uint64_t, ObsTestTraits> q;
  auto h = q.get_handle();
  constexpr uint64_t kOps = 500;
  for (uint64_t i = 1; i <= kOps; ++i) q.enqueue(h, i);
  for (uint64_t i = 1; i <= kOps; ++i) ASSERT_TRUE(q.dequeue(h).has_value());
  EXPECT_FALSE(q.dequeue(h).has_value());  // one empty dequeue, also timed

  obs::ObsSnapshot snap = q.collect_obs();
  EXPECT_EQ(snap.enq_ns.count(), kOps);
  EXPECT_EQ(snap.deq_ns.count(), kOps + 1);  // empties are latencies too
  EXPECT_EQ(snap.enq_bulk_ns.count(), 0u);

  // Bulk ops record one sample per batch, not per element.
  std::vector<uint64_t> vals(16), out(16);
  for (std::size_t j = 0; j < 16; ++j) vals[j] = j + 1;
  for (int b = 0; b < 5; ++b) {
    q.enqueue_bulk(h, vals.data(), 16);
    EXPECT_EQ(q.dequeue_bulk(h, out.data(), 16), 16u);
  }
  snap = q.collect_obs();
  EXPECT_EQ(snap.enq_bulk_ns.count(), 5u);
  EXPECT_EQ(snap.deq_bulk_ns.count(), 5u);
}

TEST(ObsQueue, SlowPathEventTotalsMatchCountersExactly) {
  ObsTestTraits::Metrics::global_ring().reset();
  using Core = WFQueueCore<ObsTestTraits>;
  WfConfig cfg;
  cfg.patience = 0;
  Core q(cfg);
  auto* h = q.register_handle();

  // Deterministic slow enqueues: each empty dequeue seals a cell, so the
  // next enqueue's single fast-path attempt (patience 0) must fall back.
  constexpr uint64_t kSlow = 100;
  for (uint64_t i = 1; i <= kSlow; ++i) {
    EXPECT_EQ(q.dequeue(h), Core::kEmpty);
    q.enqueue(h, i);
    EXPECT_EQ(q.dequeue(h), i);
  }

  // Deterministic slow dequeue (the wf_queue_slowpath_test construction):
  // an in-flight "stalled" slow enqueue keeps T ahead with its value
  // uncommitted; a patience-0 dequeuer whose helper scan points at a
  // request-free peer seals its cell and completes through deq_slow.
  auto* a = q.register_handle();  // stalled enqueuer
  auto* b = q.register_handle();  // victim dequeuer
  auto* c = q.register_handle();  // idle (request-free) peer
  b->enq.peer = c;
  (void)WfTestPeek::publish_enq_request(q, a, 777);
  (void)q.dequeue(b);

  OpStats s = q.collect_stats();
  obs::ObsSnapshot snap = q.collect_obs();
  EXPECT_EQ(rd(s.enq_slow), kSlow);
  EXPECT_GE(rd(s.deq_slow), 1u);
  EXPECT_EQ(snap.total(obs::TraceEvent::kEnqSlow), rd(s.enq_slow));
  EXPECT_EQ(snap.total(obs::TraceEvent::kDeqSlow), rd(s.deq_slow));

  // Drain the stalled enqueue's value so nothing is left in flight.
  bool saw = false;
  for (int i = 0; i < 64 && !saw; ++i) {
    if (q.dequeue(c) == 777u) saw = true;
  }
  EXPECT_TRUE(saw);
}

// The same agreement must hold when slow paths, helping, and trace emission
// happen from many threads at once (rings are per-handle; collect_obs folds
// them after the workers join).
TEST(ObsQueue, EventTotalsAgreeUnderContention) {
  ObsTestTraits::Metrics::global_ring().reset();
  WfConfig cfg;
  cfg.patience = 0;  // maximize slow-path traffic
  WFQueue<uint64_t, ObsTestTraits> q(cfg);
  {
    // Deterministic seed: guarantee slow-path traffic exists even if the
    // scheduler serializes the contended phase below (single-core hosts).
    auto h = q.get_handle();
    for (uint64_t i = 1; i <= 10; ++i) {
      (void)q.dequeue(h);  // empty: seals, next enqueue goes slow
      q.enqueue(h, i);
      (void)q.dequeue(h);
    }
  }
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOps = 4000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 1; i <= kOps; ++i) {
        (void)q.dequeue(h);  // often empty: keeps seals (and helping) hot
        q.enqueue(h, (uint64_t(t + 1) << 40) | i);
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& th : ts) th.join();

  OpStats s = q.stats();
  obs::ObsSnapshot snap = q.collect_obs();
  EXPECT_GT(rd(s.enq_slow), 0u);
  EXPECT_EQ(snap.total(obs::TraceEvent::kEnqSlow), rd(s.enq_slow));
  EXPECT_EQ(snap.total(obs::TraceEvent::kDeqSlow), rd(s.deq_slow));
  EXPECT_EQ(snap.total(obs::TraceEvent::kCleanup), rd(s.cleanups));
}

TEST(ObsQueue, ResetObsClearsHistogramsAndRings) {
  ObsTestTraits::Metrics::global_ring().reset();
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t, ObsTestTraits> q(cfg);
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 50; ++i) q.enqueue(h, i);
  ASSERT_GT(q.collect_obs().enq_ns.count(), 0u);
  q.reset_obs();
  obs::ObsSnapshot snap = q.collect_obs();
  EXPECT_EQ(snap.enq_ns.count(), 0u);
  EXPECT_EQ(snap.total(obs::TraceEvent::kEnqSlow), 0u);
  EXPECT_TRUE(snap.events.empty());
  EXPECT_EQ(snap.dropped, 0u);
  // The queue keeps working and recording after a reset.
  for (uint64_t i = 1; i <= 10; ++i) q.enqueue(h, 100 + i);
  EXPECT_EQ(q.collect_obs().enq_ns.count(), 10u);
}

// The scripted-injector test of the ISSUE: a seeded OOM schedule must leave
// a trace whose alloc_fail / reserve_hit totals agree exactly with the
// OpStats counters, and whose exported events are (ts, seq)-ordered.
TEST(ObsQueue, InjectedOomEventsAgreeWithCountersAndAreOrdered) {
  fault_test::ScriptReset script;
  ObsFaultTraits::Metrics::global_ring().reset();
  using Core = WFQueueCore<ObsFaultTraits>;
  constexpr std::size_t kSeg = ObsFaultTraits::kSegmentSize;

  Core q(WfConfig{/*patience=*/10, /*max_garbage=*/1 << 20, /*reserve=*/2});
  fault_test::Inj::set_victim(true);
  ASSERT_TRUE(fault_test::Inj::arm("enq_begin", fault::Action::kAllocFail,
                                   /*budget=*/1, /*arg=*/1u << 20));

  Core::HandleGuard h(q);
  // Fill past the pre-allocated segment and both reserve segments; every
  // enqueue after that fails cleanly at the allocation seam.
  std::size_t ok = 0;
  for (uint64_t i = 1; i <= 1000; ++i) {
    if (q.enqueue(h.get(), i)) ++ok;
  }
  EXPECT_EQ(ok, 3 * kSeg);
  fault_test::Inj::set_victim(false);

  OpStats s = q.collect_stats();
  obs::ObsSnapshot snap = q.collect_obs();
  EXPECT_GE(rd(s.alloc_failures), 1u);
  EXPECT_EQ(rd(s.reserve_pool_hits), 2u);
  EXPECT_EQ(snap.total(obs::TraceEvent::kAllocFail), rd(s.alloc_failures));
  EXPECT_EQ(snap.total(obs::TraceEvent::kReserveHit),
            rd(s.reserve_pool_hits));

  // Ordered-events contract: after sort_events() the export order is
  // non-decreasing (ts, seq), and both OOM-seam event kinds appear.
  snap.sort_events();
  ASSERT_FALSE(snap.events.empty());
  bool saw_fail = false, saw_hit = false;
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    const obs::TraceRec& r = snap.events[i];
    if (r.type == uint32_t(obs::TraceEvent::kAllocFail)) saw_fail = true;
    if (r.type == uint32_t(obs::TraceEvent::kReserveHit)) saw_hit = true;
    if (i > 0) {
      const obs::TraceRec& p = snap.events[i - 1];
      ASSERT_TRUE(p.ts_ns < r.ts_ns ||
                  (p.ts_ns == r.ts_ns && p.seq <= r.seq))
          << "event " << i << " out of order";
    }
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_hit);
}

TEST(ObsQueue, BlockingLayerRecordsPopWaitAndParks) {
  ObsTestTraits::Metrics::global_ring().reset();
  using BQ = sync::BlockingQueue<WFQueue<uint64_t, ObsTestTraits>>;
  BQ q;

  // A genuinely parked consumer: park_only never spins, so the single
  // handoff below must go through one futex sleep and one wake.
  uint64_t sum = 0;
  std::thread consumer([&] {
    auto h = q.get_handle();
    uint64_t v = 0;
    while (q.pop_wait(h, v, sync::WaitPolicy::park_only()) ==
           sync::PopStatus::kOk) {
      sum += v;
    }
  });
  auto h = q.get_handle();
  while (q.waiters() == 0) std::this_thread::yield();
  q.push(h, 41);
  q.push(h, 1);
  q.close();
  consumer.join();
  EXPECT_EQ(sum, 42u);

  OpStats s = q.stats();
  obs::ObsSnapshot snap = q.collect_obs();
  EXPECT_GE(rd(s.deq_parks), 1u);
  EXPECT_EQ(snap.total(obs::TraceEvent::kPark), rd(s.deq_parks));
  EXPECT_GE(snap.total(obs::TraceEvent::kWake), 1u);
  // Successful pops record wait latency; at shift 0, both deliveries did.
  EXPECT_EQ(snap.pop_wait_ns.count(), 2u);
}

TEST(ObsTraceExport, WritesLoadableJsonAtomically) {
  ObsTestTraits::Metrics::global_ring().reset();
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t, ObsTestTraits> q(cfg);
  auto h = q.get_handle();
  // Empty-dequeue/enqueue rounds: each seal forces one slow enqueue, so
  // the exported trace is guaranteed to carry kEnqSlow events.
  for (uint64_t i = 1; i <= 20; ++i) {
    EXPECT_FALSE(q.dequeue(h).has_value());
    q.enqueue(h, i);
    ASSERT_TRUE(q.dequeue(h).has_value());
  }

  const std::string path = ::testing::TempDir() + "wfq_obs_trace.json";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::write_chrome_trace(q.collect_obs(), path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  // Chrome trace-event JSON object format, with our event names and the
  // exact-totals block the CI validator checks.
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"obs:enq_slow\""), std::string::npos);
  EXPECT_NE(body.find("\"otherData\""), std::string::npos);
  EXPECT_NE(body.find("\"totals\""), std::string::npos);
  EXPECT_NE(body.find("\"histograms\""), std::string::npos);
  EXPECT_NE(body.find("\"p999_ns\""), std::string::npos);
  // Atomic publish: no .tmp litter next to the committed file.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // Unwritable destination reports failure instead of leaving junk.
  EXPECT_FALSE(obs::write_chrome_trace(q.collect_obs(),
                                       "/nonexistent-dir/trace.json"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wfq
