# Empty dependencies file for bench_pairs.
# This may be replaced when dependencies are built.
