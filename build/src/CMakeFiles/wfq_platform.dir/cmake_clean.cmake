file(REMOVE_RECURSE
  "CMakeFiles/wfq_platform.dir/harness/platform.cpp.o"
  "CMakeFiles/wfq_platform.dir/harness/platform.cpp.o.d"
  "libwfq_platform.a"
  "libwfq_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfq_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
