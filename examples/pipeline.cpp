// Pipeline example: a three-stage packet-processing pipeline where each
// stage hands work to the next through a wait-free queue — the classic
// systems workload the paper's introduction motivates (threads of a
// multi-core application coordinating through shared queues).
//
//   parse (2 threads) --q1--> filter (2 threads) --q2--> aggregate (1)
//
//   $ ./pipeline [packets]
//
// Stage shutdown is the blocking layer's close()/drain protocol: when a
// stage's producers finish, main close()s that stage's queue; the next
// stage drains the residue and its pop_wait returns kClosed — replacing
// the old done-flag handshake (which needed a carefully ordered
// flag-before-dequeue read to dodge a TOCTOU; close() builds that ordering
// in) and parking idle stages instead of spin-polling them. The aggregate
// stage verifies conservation (every accepted packet's payload is
// accounted for exactly once) and prints per-stage throughput.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "sync/blocking_queue.hpp"

namespace {

// A "packet": id + synthetic payload checksum. Small enough to box cheaply;
// a production deployment would enqueue pointers into a pool.
struct Packet {
  uint64_t id;
  uint64_t checksum;
};

using PacketQueue = wfq::sync::BlockingWFQueue<Packet>;
using wfq::sync::PopStatus;

}  // namespace

int main(int argc, char** argv) {
  const uint64_t total_packets =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  constexpr unsigned kParsers = 2, kFilters = 2;

  PacketQueue q1, q2;
  std::atomic<uint64_t> parsed{0}, accepted{0}, dropped{0};
  std::atomic<uint64_t> checksum_in{0};

  auto t0 = std::chrono::steady_clock::now();

  // Stage 1: parse — synthesize packets and push into q1.
  std::vector<std::thread> parsers;
  for (unsigned p = 0; p < kParsers; ++p) {
    parsers.emplace_back([&, p] {
      auto h = q1.get_handle();
      wfq::Xorshift128Plus rng(p + 1);
      const uint64_t mine = total_packets / kParsers +
                            (p == 0 ? total_packets % kParsers : 0);
      uint64_t local_sum = 0;
      for (uint64_t i = 0; i < mine; ++i) {
        Packet pkt{(uint64_t(p) << 48) | i, rng.next()};
        local_sum += pkt.checksum;
        q1.push(h, pkt);
      }
      checksum_in.fetch_add(local_sum);
      parsed.fetch_add(mine);
    });
  }

  // Stage 2: filter — drop packets whose checksum is divisible by 4
  // (a stand-in for classification work), forward the rest. The loop has
  // exactly one exit: kClosed, which q1's close() guarantees arrives only
  // after every parsed packet has been handed to some filter.
  std::atomic<uint64_t> dropped_checksum{0};
  std::vector<std::thread> filters;
  for (unsigned f = 0; f < kFilters; ++f) {
    filters.emplace_back([&] {
      auto in = q1.get_handle();
      auto out = q2.get_handle();
      uint64_t local_drop_sum = 0;
      Packet pkt;
      while (q1.pop_wait(in, pkt) == PopStatus::kOk) {
        if (pkt.checksum % 4 == 0) {
          local_drop_sum += pkt.checksum;
          dropped.fetch_add(1);
        } else {
          q2.push(out, pkt);
          accepted.fetch_add(1);
        }
      }
      dropped_checksum.fetch_add(local_drop_sum);
    });
  }

  // Stage 3: aggregate — single consumer sums the surviving checksums.
  std::atomic<uint64_t> checksum_out{0};
  std::thread aggregator([&] {
    auto h = q2.get_handle();
    uint64_t sum = 0;
    Packet pkt;
    while (q2.pop_wait(h, pkt) == PopStatus::kOk) sum += pkt.checksum;
    checksum_out.store(sum);
  });

  for (auto& t : parsers) t.join();
  q1.close();  // parse stage done: filters drain q1, then see kClosed
  for (auto& t : filters) t.join();
  q2.close();  // filter stage done: aggregator drains q2, then exits
  aggregator.join();

  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();

  std::printf("pipeline: %llu parsed, %llu accepted, %llu dropped in %.3fs "
              "(%.2f Mpkt/s end-to-end)\n",
              (unsigned long long)parsed.load(),
              (unsigned long long)accepted.load(),
              (unsigned long long)dropped.load(), secs,
              double(parsed.load()) / secs / 1e6);
  const bool conserved =
      checksum_in.load() == checksum_out.load() + dropped_checksum.load();
  std::printf("conservation check: %s (in=%llu out+dropped=%llu)\n",
              conserved ? "OK" : "FAILED",
              (unsigned long long)checksum_in.load(),
              (unsigned long long)(checksum_out.load() +
                                   dropped_checksum.load()));
  return conserved ? 0 : 1;
}
