/* C89-compatible API for the wait-free queue.
 *
 * Thin bindings over the blocking & lifecycle layer wrapped around one of
 * three backends (wfq_options_t.backend): the unbounded wait-free queue
 * (default), or the bounded-memory SCQ / wCQ rings, which add a hard
 * capacity, WFQ_E_FULL backpressure, and wfq_enqueue_wait parking.
 * Payloads are 64-bit values (pointers cast to uintptr_t are the common
 * case). Four values are reserved by the queue's cell encoding and
 * rejected by wfq_enqueue: 0, UINT64_MAX, UINT64_MAX-1 and UINT64_MAX-2.
 *
 * Out-of-memory contract: when segment allocation fails past the internal
 * retries and the pre-reserved segment pool, operations return -3 instead
 * of aborting or corrupting the queue. -3 is retryable — no value was
 * consumed or lost, the queue stays intact, and a later call may succeed
 * once memory pressure eases (docs/API.md "OOM contract").
 *
 * Threading contract: one wfq_handle_t per thread (acquire/release are
 * cheap and internally recycled). enqueue/dequeue through a handle are
 * wait-free; the _wait/_timed dequeues may block (futex park) but never
 * spin unboundedly. A handle must be released before its queue is
 * destroyed.
 *
 * Lifecycle: wfq_close() makes further enqueues fail with -2; dequeues keep
 * returning residual items until the queue is empty, after which
 * wfq_dequeue_wait returns 0 (closed-and-drained — a linearizable
 * termination signal, never returned while an item is still reachable).
 * wfq_close is idempotent and callable from any thread, no handle needed.
 */
#ifndef WFQ_C_H_
#define WFQ_C_H_

#include <stddef.h>
#include <stdint.h>

#include "wfq_stats_fields.h"

#ifdef __cplusplus
extern "C" {
#endif

typedef struct wfq_queue wfq_queue_t;
typedef struct wfq_handle wfq_handle_t;

/* Error codes shared by the enqueue family. */
#define WFQ_OK 0
#define WFQ_E_RESERVED (-1) /* value is one of the four reserved payloads */
#define WFQ_E_CLOSED (-2)   /* queue closed; nothing enqueued */
#define WFQ_E_NOMEM (-3)    /* allocation failed cleanly; retryable */
#define WFQ_E_FULL (-4)     /* bounded backend at capacity; retry, drop,
                             * or park via wfq_enqueue_wait */
#define WFQ_E_VERSION (-5)  /* shm arena rejected: wrong magic or layout
                             * version (wfq_shm_attach refuses BEFORE
                             * writing a single byte to the file) */

/* Queue backend selector (wfq_options_t.backend). */
typedef enum wfq_backend {
  WFQ_BACKEND_WF = 0,  /* unbounded wait-free queue (the paper's; default) */
  WFQ_BACKEND_SCQ = 1, /* bounded lock-free index ring (SCQ) */
  WFQ_BACKEND_WCQ = 2, /* bounded wait-free-enqueue ring (wCQ) */
  WFQ_BACKEND_SHARDED = 3, /* N wait-free lanes with per-handle enqueue
                           * affinity and stealing dequeues. RELAXED FIFO:
                           * values pushed through ONE handle are dequeued
                           * in order; values from different handles carry
                           * no cross-order guarantee. Shape via
                           * wfq_options_t.shards / numa_mode. */
  WFQ_BACKEND_SHM = 4     /* cross-process shared-memory queue. NOT
                           * selectable through wfq_create_ex: create or
                           * join one with wfq_shm_create/wfq_shm_attach
                           * (the queue lives in an arena file, not this
                           * process's heap). Crash-robust and lock-free;
                           * survives SIGKILLed peers (docs/ALGORITHM.md
                           * section 16). */
} wfq_backend_t;

/* Lane placement policy of the sharded backend (wfq_options_t.numa_mode).
 * Performance-only: every mode is correct on every machine; on a UMA host
 * all three degrade to WFQ_NUMA_NONE. */
typedef enum wfq_numa_mode {
  WFQ_NUMA_NONE = 0,       /* no binding */
  WFQ_NUMA_INTERLEAVE = 1, /* lane i's memory faulted on node i % nodes */
  WFQ_NUMA_LOCAL = 2       /* interleaved placement; handles prefer a
                            * NUMA-local lane as their home */
} wfq_numa_mode_t;

/* PATIENCE driving mode (wfq_options_t.patience_mode; WF backend only).
 * Adaptive mode seeds each handle's controller with `patience` (clamped to
 * [1, 64]) and moves it with the observed slow-path ratio; adaptation only
 * changes when helping starts, never whether it completes, so operations
 * stay wait-free (docs/ALGORITHM.md section 14). The patience_raises /
 * patience_drops / bulk_k_current counters of wfq_stats_ex_t report what
 * the controllers did. */
typedef enum wfq_patience_mode {
  WFQ_PATIENCE_FIXED = 0,   /* the paper's WF-k: patience never moves */
  WFQ_PATIENCE_ADAPTIVE = 1 /* per-handle slow-path-ratio controller */
} wfq_patience_mode_t;

/* Create a queue. `patience` is the paper's PATIENCE knob (10 = WF-10,
 * 0 = WF-0); `max_garbage` the reclamation threshold (segments).
 * Returns NULL on allocation failure. */
wfq_queue_t* wfq_create(unsigned patience, int64_t max_garbage);

/* Create with the defaults (PATIENCE = 10, MAX_GARBAGE = 64). */
wfq_queue_t* wfq_create_default(void);

/* Every construction knob, including the backend selector. Always
 * initialize with wfq_options_init first so newly added fields keep their
 * defaults. Fields are read only by the backend they apply to. */
typedef struct wfq_options {
  int backend;             /* wfq_backend_t; WFQ_BACKEND_WF by default */
  unsigned patience;       /* WF: extra fast-path attempts before helping */
  int64_t max_garbage;     /* WF: retired segments before reclamation */
  size_t reserve_segments; /* WF: pre-allocated OOM reserve pool
                            * (operations dip into it when live allocation
                            * fails; freed segments refill it; 0 disables) */
  size_t capacity;         /* SCQ/WCQ: hard element bound, rounded up to a
                            * power of two. Must be >= the number of threads
                            * operating concurrently (ring precondition). */
  int patience_mode;       /* WF: wfq_patience_mode_t; fixed by default */
  unsigned prefetch_segments; /* WF: next-segment header prefetch depth of
                               * the cell traversal (0 disables; default 1) */
  size_t shards;           /* SHARDED: lane count; 0 = auto (min(hardware
                            * threads, 4)). Each lane is a full WF queue
                            * built from the WF knobs above. */
  int numa_mode;           /* SHARDED: wfq_numa_mode_t; NONE by default */
  unsigned shm_max_procs;  /* SHM: size of the attached-process table in the
                            * arena (handles across all processes; each
                            * attached process consumes one slot plus one
                            * per acquired handle). 0 = default (16). */
} wfq_options_t;

/* Fill `opt` with the defaults (WF backend, PATIENCE 10 fixed-mode,
 * MAX_GARBAGE 64, no reserve, prefetch depth 1, capacity 1024 for callers
 * that switch the backend, shards 0 = auto, NUMA mode NONE). */
void wfq_options_init(wfq_options_t* opt);

/* Create from an options struct. Returns NULL on allocation failure or an
 * unknown backend value. */
wfq_queue_t* wfq_create_ex(const wfq_options_t* opt);

/* Destroy the queue. All handles must have been released. */
void wfq_destroy(wfq_queue_t* q);

/* ---- Cross-process shared-memory queue (WFQ_BACKEND_SHM) ----------------
 *
 * The queue lives in a file-backed arena that independent PROCESSES mmap;
 * one process creates it, any number attach. All wfq_* calls above work on
 * the returned queue (one handle per thread, in every process). Unlike the
 * in-process backends the shm queue is crash-ROBUST rather than wait-free:
 * a peer killed with SIGKILL mid-operation is detected by survivors (pid
 * liveness + start-time identity) and its half-finished work is resolved —
 * no value is ever lost, and delivery is at-least-once across crashes
 * (docs/ALGORITHM.md section 16 has the full fault model).
 *
 * `bytes` fixes the arena size and therefore the queue's total capacity;
 * enqueues past it return WFQ_E_FULL. Only the WFQ_OK path touches *out. */

/* Create a fresh arena at `path` (an existing file is replaced) and attach
 * to it. `opt` may be NULL for defaults; the SHM backend reads shm_max_procs
 * and capacity (cells per segment, rounded to a power of two). Returns
 * WFQ_OK, WFQ_E_NOMEM (I/O or sizing failure), or WFQ_E_VERSION. */
int wfq_shm_create(const char* path, size_t bytes, const wfq_options_t* opt,
                   wfq_queue_t** out);

/* Attach to an arena another process created. Validates the header through
 * a read-only descriptor first: on WFQ_E_VERSION (foreign magic or layout
 * version) the file has not been written — or even writably mapped.
 * Attaching also adopts any work orphaned by dead peers. Returns WFQ_OK,
 * WFQ_E_NOMEM (I/O failure or process table full), or WFQ_E_VERSION. */
int wfq_shm_attach(const char* path, wfq_queue_t** out);

/* Detach from the arena (unmap; the file and the values in it persist for
 * the remaining peers). All handles this process acquired must have been
 * released. The arena file itself is removed with plain unlink/remove once
 * every process is done with it. Returns WFQ_OK. */
int wfq_shm_detach(wfq_queue_t* q);

/* Per-thread registration. */
wfq_handle_t* wfq_handle_acquire(wfq_queue_t* q);
void wfq_handle_release(wfq_handle_t* h);

/* Enqueue `value`. Returns WFQ_OK on success, WFQ_E_RESERVED if `value`
 * is one of the four reserved payloads, WFQ_E_CLOSED if the queue is
 * closed, WFQ_E_NOMEM if segment allocation failed, or — bounded backends
 * only — WFQ_E_FULL when the ring is at capacity (nothing enqueued in any
 * failure case; WFQ_E_NOMEM and WFQ_E_FULL are retryable). Never blocks;
 * with no blocked consumer the closed-check and wakeup-check add no fence
 * on x86. */
int wfq_enqueue(wfq_handle_t* h, uint64_t value);

/* Blocking enqueue: on a bounded backend, parks on a futex while the ring
 * is full until a consumer frees space or the queue closes — the producer
 * mirror of wfq_dequeue_wait. Returns WFQ_OK, WFQ_E_RESERVED, WFQ_E_CLOSED
 * or WFQ_E_NOMEM; never WFQ_E_FULL. On the unbounded WF backend this is
 * exactly wfq_enqueue. */
int wfq_enqueue_wait(wfq_handle_t* h, uint64_t value);

/* Hard element bound of a bounded backend (the rounded-up capacity), or 0
 * for the unbounded WF backend. */
size_t wfq_capacity(const wfq_queue_t* q);

/* Dequeue into *out. Returns 1 on success, 0 if the queue was observed
 * empty (linearizable EMPTY; says nothing about closure), -3 if segment
 * allocation failed (no value lost; retryable). Wait-free, never blocks. */
int wfq_dequeue(wfq_handle_t* h, uint64_t* out);

/* Blocking dequeue: spins briefly, then parks on a futex until a value
 * arrives or the queue is closed AND drained. Returns 1 with *out set, 0
 * when closed-and-drained (*out untouched) — after a 0, no later call can
 * ever return a value — or -3 on allocation failure (retryable). */
int wfq_dequeue_wait(wfq_handle_t* h, uint64_t* out);

/* Timed blocking dequeue. Returns 1 with *out set, 0 on timeout with the
 * queue still open (a delivery racing the deadline wins: one final attempt
 * runs after the clock expires), -1 when closed-and-drained, or -3 on
 * allocation failure (retryable). */
int wfq_dequeue_timed(wfq_handle_t* h, uint64_t* out, uint64_t timeout_ns);

/* Close the queue (see file header). Blocks until every in-flight enqueue
 * has completed, so on return the set of successful enqueues is frozen and
 * all parked consumers have been woken. Idempotent. */
void wfq_close(wfq_queue_t* q);

/* 1 once wfq_close has been called (possibly still draining), else 0. */
int wfq_is_closed(const wfq_queue_t* q);

/* Batched enqueue: append values[0..count) in order, paying the contended
 * fetch-and-add once for the whole batch. Linearizes as `count` consecutive
 * enqueues. Returns 0 on success, -1 if ANY value is reserved, -2 if the
 * queue is closed (nothing enqueued in either case), or -3 if allocation
 * failed mid-batch — then a PREFIX of the batch was enqueued; callers
 * needing exact per-item accounting under memory pressure should use
 * wfq_enqueue. Each item is individually wait-free. */
int wfq_enqueue_bulk(wfq_handle_t* h, const uint64_t* values, size_t count);

/* Batched dequeue: remove up to `count` values into out[0..), FIFO order,
 * one fetch-and-add. Returns the number dequeued; fewer than `count` means
 * the queue was observed empty during the call. Never blocks. */
size_t wfq_dequeue_bulk(wfq_handle_t* h, uint64_t* out, size_t count);

/* Heuristic occupancy (tail - head indices, clamped at 0); monitoring
 * only, not linearizable. */
uint64_t wfq_approx_size(const wfq_queue_t* q);

/* Operation-path statistics (the paper's Table 2 counters plus the
 * blocking layer's park/notify accounting). */
typedef struct wfq_stats {
  uint64_t enqueues;
  uint64_t dequeues;
  uint64_t slow_enqueues;
  uint64_t slow_dequeues;
  uint64_t empty_dequeues;
  uint64_t segments_freed;
  uint64_t deq_parks;            /* consumer futex sleeps */
  uint64_t deq_spurious_wakeups; /* wakes that found the queue still empty */
  uint64_t notify_calls;         /* producer-side futex wakes issued */
  /* Robustness counters (fault-injection harness + OOM seam). The
   * injected_* pair is nonzero only in fault-injection builds. */
  uint64_t injected_stalls;   /* scripted stall actions performed */
  uint64_t injected_crashes;  /* scripted crash actions performed */
  uint64_t adopted_handles;   /* abandoned handles whose op was finished */
  uint64_t orphan_drops;      /* values dropped completing adopted deqs */
  uint64_t alloc_failures;    /* segment allocations that failed cleanly */
  uint64_t reserve_pool_hits; /* allocations served by the reserve pool */
  uint64_t oom_rescues;       /* deposits retracted from debt-parked cells
                               * and re-enqueued (value conservation when
                               * a dequeue hit WFQ_NOMEM) */
} wfq_stats_t;

/* Legacy aggregate view. Kept for source compatibility; it predates the
 * batched-operation and probe counters and will not grow. New code should
 * use wfq_get_stats_ex, whose struct is generated from the same X-macro
 * table the queue's internal counters are (wfq_stats_fields.h) — a counter
 * added there appears here by construction and can never silently read
 * zero. */
void wfq_get_stats(const wfq_queue_t* q, wfq_stats_t* out);

/* Complete statistics: one uint64_t per counter in wfq_stats_fields.h,
 * same names, same order. Generated from the X-macro table, so this struct
 * is always in sync with the queue's internal OpStats (static_asserts in
 * the implementation enforce it at compile time). */
typedef struct wfq_stats_ex {
#define WFQ_STATS_C_FIELD(name) uint64_t name;
  WFQ_STATS_FIELDS(WFQ_STATS_C_FIELD, WFQ_STATS_C_FIELD)
#undef WFQ_STATS_C_FIELD
} wfq_stats_ex_t;

void wfq_get_stats_ex(const wfq_queue_t* q, wfq_stats_ex_t* out);

/* Export the queue's observability snapshot — slow-path trace events plus
 * latency-histogram summaries (p50/p99/p999 of enqueue, dequeue, bulk and
 * blocking-pop latencies) — as a Chrome trace-event JSON file loadable by
 * chrome://tracing and Perfetto. The file is written to `<path>.tmp` and
 * atomically renamed, so a crash mid-export never leaves a truncated file.
 * Call while no operation is in flight for exact numbers. Returns 0 on
 * success, -1 on I/O failure. */
int wfq_trace_dump(const wfq_queue_t* q, const char* path);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* WFQ_C_H_ */
