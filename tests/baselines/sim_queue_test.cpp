// Correctness tests for the P-Sim universal-construction queue baseline.
#include "baselines/sim_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include "support/queue_test_util.hpp"

namespace wfq::baselines {
namespace {

TEST(SimQueue, StartsEmpty) {
  SimQueue<uint64_t> q(8);
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(SimQueue, SequentialFifo) {
  SimQueue<uint64_t> q(8);
  test::run_sequential_fifo(q, 3000);
}

TEST(SimQueue, ReusableAfterEmpty) {
  SimQueue<uint64_t> q(8);
  auto h = q.get_handle();
  for (int round = 0; round < 100; ++round) {
    EXPECT_FALSE(q.dequeue(h).has_value());
    q.enqueue(h, round + 1);
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, uint64_t(round + 1));
  }
}

TEST(SimQueue, CopyablePayloads) {
  SimQueue<std::string> q(4);
  auto h = q.get_handle();
  q.enqueue(h, "alpha");
  q.enqueue(h, "beta");
  EXPECT_EQ(q.dequeue(h), "alpha");
  EXPECT_EQ(q.dequeue(h), "beta");
}

TEST(SimQueue, HandleSlotRecyclingKeepsToggleParity) {
  // Releasing and reacquiring a slot must hand the toggle parity over,
  // otherwise the next flip would carry and corrupt neighbours' bits.
  SimQueue<uint64_t> q(2);
  for (int i = 0; i < 33; ++i) {  // odd op counts flip parity
    auto h = q.get_handle();
    q.enqueue(h, i + 1);
    EXPECT_EQ(q.dequeue(h), uint64_t(i + 1));
    if (i % 3 == 0) {
      EXPECT_FALSE(q.dequeue(h).has_value());
    }
  }
}

TEST(SimQueue, BacklogTracksSize) {
  SimQueue<uint64_t> q(4);
  auto h = q.get_handle();
  for (int i = 0; i < 20; ++i) q.enqueue(h, i + 1);
  EXPECT_EQ(q.size(), 20u);
  for (int i = 0; i < 5; ++i) (void)q.dequeue(h);
  EXPECT_EQ(q.size(), 15u);
}

TEST(SimQueue, MpmcPropertyDefault) {
  SimQueue<uint64_t> q(16);
  test::run_mpmc_property(q, 4, 4, 1500);
}

TEST(SimQueue, MpmcPropertyProducerHeavy) {
  SimQueue<uint64_t> q(16);
  test::run_mpmc_property(q, 6, 2, 1000);
}

TEST(SimQueue, MpmcPropertyConsumerHeavy) {
  SimQueue<uint64_t> q(16);
  test::run_mpmc_property(q, 2, 6, 1000);
}

TEST(SimQueue, PairsConservation) {
  SimQueue<uint64_t> q(16);
  test::run_pairs_conservation(q, 8, 1200);
}

TEST(SimQueue, DestructionWithBacklogDoesNotLeak) {
  auto* q = new SimQueue<std::string>(8);
  {
    auto h = q->get_handle();
    for (int i = 0; i < 300; ++i) q->enqueue(h, "x" + std::to_string(i));
  }
  delete q;  // records + announcements freed (ASan-verified)
}

TEST(SimQueue, InterleavedMixedTraffic) {
  SimQueue<uint64_t> q(8);
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> ts;
  std::atomic<uint64_t> in{0}, out{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      uint64_t li = 0, lo = 0;
      for (int i = 0; i < 1200; ++i) {
        uint64_t v = (uint64_t(t) << 32) | uint64_t(i + 1);
        q.enqueue(h, v);
        li += v;
        auto got = q.dequeue(h);
        if (got.has_value()) lo += *got;
      }
      in.fetch_add(li);
      out.fetch_add(lo);
    });
  }
  for (auto& t : ts) t.join();
  auto h = q.get_handle();
  for (;;) {
    auto got = q.dequeue(h);
    if (!got.has_value()) break;
    out.fetch_add(*got);
  }
  EXPECT_EQ(in.load(), out.load());
}

}  // namespace
}  // namespace wfq::baselines
