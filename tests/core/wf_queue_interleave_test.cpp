// Schedule-perturbation tests: the interleave_hint seam injects randomized
// yields at the algorithm's sensitive points (post-FAA stalls, the Dijkstra
// window, helper loops, cleaner election), forcing interleavings that
// natural preemption on a small host would essentially never produce. Each
// suite runs the MPMC property and a linearizability check under this
// adversarial scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "checker/queue_checker.hpp"
#include "common/random.hpp"
#include "core/wf_queue.hpp"
#include "support/queue_test_util.hpp"

namespace wfq {
namespace {

/// Yield with probability 1/8 at every hint; thread-local PRNG so the
/// perturbation itself is uncoordinated.
struct YieldingTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 16;  // more segment churn too
  static void interleave_hint() {
    thread_local Xorshift128Plus rng(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    if (rng.next_below(8) == 0) std::this_thread::yield();
  }
};

/// Heavier perturbation: yield half the time.
struct HeavyYieldTraits : YieldingTraits {
  static void interleave_hint() {
    thread_local Xorshift128Plus rng(
        0xABCD ^ std::hash<std::thread::id>{}(std::this_thread::get_id()));
    if (rng.next_below(2) == 0) std::this_thread::yield();
  }
};

TEST(WfInterleave, MpmcPropertyUnderYieldInjection) {
  WfConfig cfg;
  cfg.patience = 2;
  cfg.max_garbage = 4;
  WFQueue<uint64_t, YieldingTraits> q(cfg);
  test::run_mpmc_property(q, 4, 4, 1500);
}

TEST(WfInterleave, MpmcPropertyUnderHeavyYieldInjectionWf0) {
  WfConfig cfg;
  cfg.patience = 0;
  cfg.max_garbage = 2;
  WFQueue<uint64_t, HeavyYieldTraits> q(cfg);
  test::run_mpmc_property(q, 4, 4, 800);
}

TEST(WfInterleave, SlowPathsActuallyFireUnderPerturbation) {
  // With yields landing between FAA and cell visit, fast paths genuinely
  // fail and the helping machinery runs — verify via the path counters.
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t, HeavyYieldTraits> q(cfg);
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < 1500; ++i) {
        q.enqueue(h, (uint64_t(t) << 40) | (i + 1));
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& t : ts) t.join();
  OpStats s = q.stats();
  EXPECT_GT(s.enq_slow.load() + s.deq_slow.load(), 0u)
      << "yield injection failed to provoke any slow path";
}

class WfInterleaveLin : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WfInterleaveLin, LinearizableUnderYieldInjection) {
  WfConfig cfg;
  cfg.patience = GetParam() % 3;  // vary patience across seeds
  cfg.max_garbage = 2;
  WFQueue<uint64_t, YieldingTraits> q(cfg);

  constexpr unsigned kThreads = 4;
  constexpr unsigned kOps = 600;
  lin::HistoryRecorder rec;
  std::vector<lin::HistoryRecorder::ThreadLog*> logs;
  for (unsigned t = 0; t < kThreads; ++t) logs.push_back(rec.make_log(t));
  std::vector<std::thread> ws;
  for (unsigned t = 0; t < kThreads; ++t) {
    ws.emplace_back([&, t] {
      auto h = q.get_handle();
      Xorshift128Plus rng(GetParam() * 131 + t);
      uint64_t next = (uint64_t(t) << 32) | 1;
      for (unsigned i = 0; i < kOps; ++i) {
        if (rng.percent_chance(50)) {
          lin::recorded_enqueue(q, h, logs[t], next++);
        } else {
          (void)lin::recorded_dequeue(q, h, logs[t]);
        }
      }
    });
  }
  for (auto& w : ws) w.join();
  auto result = lin::check_queue_history(rec.collect());
  EXPECT_TRUE(result.linearizable) << result.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WfInterleaveLin,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(WfInterleave, ReclamationKeepsUpUnderPerturbation) {
  WfConfig cfg;
  cfg.patience = 1;
  cfg.max_garbage = 2;
  WFQueue<uint64_t, YieldingTraits> q(cfg);
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < 4000; ++i) {
        q.enqueue(h, (uint64_t(t) << 40) | (i + 1));
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& t : ts) t.join();
  // 16 cells/segment, >= 32k indices consumed => >= 2000 segments churned.
  EXPECT_LT(q.live_segments(), 1500u);
  EXPECT_GT(q.stats().segments_freed.load(), 100u);
}

}  // namespace
}  // namespace wfq
