// Every queue must be drivable by the benchmark harness (the
// ConcurrentQueue concept the whole bench/ directory assumes): run both
// workload kinds briefly against each type and audit the counters.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/ccqueue.hpp"
#include "baselines/faaq.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/runner.hpp"
#include "memory/reclaimer.hpp"

namespace wfq::bench {
namespace {

template <class Queue>
void drive(Queue& q) {
  RunConfig pairs;
  pairs.kind = WorkloadKind::kPairs;
  pairs.threads = 3;
  pairs.total_ops = 1200;
  pairs.use_delay = false;
  auto r1 = run_workload(q, pairs);
  EXPECT_EQ(r1.operations, 2 * 1200u);
  EXPECT_EQ(r1.dequeue_hits + r1.dequeue_empties, 1200u);
  EXPECT_GT(r1.elapsed_seconds, 0.0);

  RunConfig mix;
  mix.kind = WorkloadKind::kPercentEnq;
  mix.threads = 3;
  mix.total_ops = 1200;
  mix.percent_enqueue = 50;
  mix.use_delay = false;
  auto r2 = run_workload(q, mix);
  EXPECT_EQ(r2.operations, 1200u);
}

TEST(HarnessCompat, WfQueue) {
  WFQueue<uint64_t> q;
  drive(q);
}
TEST(HarnessCompat, WfQueueWf0) {
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t> q(cfg);
  drive(q);
}
TEST(HarnessCompat, MsQueueHp) {
  baselines::MSQueue<uint64_t, HpReclaimer<2>> q;
  drive(q);
}
TEST(HarnessCompat, MsQueueEbr) {
  baselines::MSQueue<uint64_t, EbrReclaimer<2>> q;
  drive(q);
}
TEST(HarnessCompat, Lcrq) {
  baselines::LCRQ<uint64_t> q;
  drive(q);
}
TEST(HarnessCompat, CcQueue) {
  baselines::CCQueue<uint64_t> q;
  drive(q);
}
TEST(HarnessCompat, MutexQueue) {
  baselines::MutexQueue<uint64_t> q;
  drive(q);
}
TEST(HarnessCompat, FaaQueue) {
  baselines::FAAQueue<uint64_t> q;
  drive(q);
}
TEST(HarnessCompat, KpQueue) {
  baselines::KPQueue<uint64_t> q(8);
  drive(q);
}
TEST(HarnessCompat, SimQueue) {
  baselines::SimQueue<uint64_t> q(8);
  drive(q);
}

}  // namespace
}  // namespace wfq::bench
