// In-process functional coverage of the shared-memory queue: FIFO, the
// bounded-capacity and closed contracts, multi-handle MPMC conservation,
// blocking pops across attachments, and the geometry checks of attach().
// Cross-process crash behavior lives in shm_crash_test.cpp.
#include "ipc/shm_queue.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using wfq::ipc::ArenaStatus;
using wfq::ipc::ShmOptions;
using wfq::ipc::ShmPop;
using wfq::ipc::ShmPush;
using ShmQ = wfq::ipc::ShmQueue<>;

std::string temp_path(const char* tag) {
  return "/tmp/wfq_shmq_test_" + std::to_string(::getpid()) + "_" + tag;
}

struct QueueFile {
  std::string path;
  explicit QueueFile(const char* tag) : path(temp_path(tag)) {}
  ~QueueFile() { wfq::ipc::ShmArena::destroy(path.c_str()); }
};

ShmOptions small_opts() {
  ShmOptions o;
  o.max_procs = 8;
  o.seg_cells = 64;
  o.rescue_slots = 32;
  return o;
}

TEST(ShmQueue, FifoRoundTrip) {
  QueueFile f("fifo");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, small_opts(), &q),
            ArenaStatus::kOk);
  ASSERT_GT(q.capacity(), 1000u);
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    ASSERT_EQ(q.enqueue(v), ShmPush::kOk);
  }
  EXPECT_EQ(q.approx_size(), 1000u);
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    std::uint64_t out = 0;
    ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
    EXPECT_EQ(out, v);  // single-threaded: strict FIFO
  }
  std::uint64_t out = 0;
  EXPECT_EQ(q.dequeue(&out), ShmPop::kEmpty);
}

TEST(ShmQueue, CreateRejectsBadGeometry) {
  QueueFile f("badgeo");
  ShmQ q;
  ShmOptions o = small_opts();
  o.seg_cells = 48;  // not a power of two
  EXPECT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, o, &q),
            ArenaStatus::kBadGeometry);
  o = small_opts();
  o.max_procs = 0;
  EXPECT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, o, &q),
            ArenaStatus::kBadGeometry);
}

TEST(ShmQueue, FullAtCapacity) {
  QueueFile f("full");
  ShmQ q;
  ShmOptions o = small_opts();
  o.seg_cells = 16;
  // Small arena => small capacity; every ticket below it must be backed.
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 16 * 1024, o, &q), ArenaStatus::kOk);
  const std::uint64_t cap = q.capacity();
  ASSERT_GT(cap, 0u);
  ASSERT_LT(cap, 4096u);
  for (std::uint64_t v = 1; v <= cap; ++v) {
    ASSERT_EQ(q.enqueue(v), ShmPush::kOk) << "ticket " << v - 1 << " of "
                                          << cap;
  }
  EXPECT_EQ(q.enqueue(999), ShmPush::kFull);
  // Tickets are not recycled (crash auditability): the queue stays full
  // even after draining. That is the documented bounded-lifetime contract.
  std::uint64_t out = 0;
  EXPECT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(q.enqueue(999), ShmPush::kFull);
}

TEST(ShmQueue, ClosedRejectsEnqueue) {
  QueueFile f("closed");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, small_opts(), &q),
            ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(7), ShmPush::kOk);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.enqueue(8), ShmPush::kClosed);
  // Residual values drain after close.
  std::uint64_t out = 0;
  EXPECT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 7u);
}

TEST(ShmQueue, SecondAttachmentSeesValues) {
  QueueFile f("attach");
  ShmQ owner;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, small_opts(), &owner),
            ArenaStatus::kOk);
  ASSERT_EQ(owner.enqueue(11), ShmPush::kOk);

  ShmQ peer;
  ASSERT_EQ(ShmQ::attach(f.path.c_str(), &peer), ArenaStatus::kOk);
  EXPECT_EQ(peer.capacity(), owner.capacity());
  EXPECT_EQ(peer.attached_procs(), 2u);
  std::uint64_t out = 0;
  ASSERT_EQ(peer.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 11u);
  ASSERT_EQ(peer.enqueue(12), ShmPush::kOk);
  ASSERT_EQ(owner.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 12u);
}

TEST(ShmQueue, AttachRejectsVersionedButCorruptGeometry) {
  QueueFile f("corruptgeo");
  {
    ShmQ owner;
    ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 18, small_opts(), &owner),
              ArenaStatus::kOk);
    // Corrupt the geometry in place: capacity no longer matches
    // max_segments * seg_cells.
    const_cast<ShmQ::Geometry&>(owner.geometry()).capacity += 1;
  }
  ShmQ peer;
  EXPECT_EQ(ShmQ::attach(f.path.c_str(), &peer), ArenaStatus::kBadGeometry);
}

TEST(ShmQueue, ClaimExhaustsProcSlots) {
  QueueFile f("slots");
  ShmQ q;
  ShmOptions o = small_opts();
  o.max_procs = 3;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, o, &q), ArenaStatus::kOk);
  // create() claimed one; two more fit, the fourth must fail.
  ShmQ::LocalHandle a, b, c;
  EXPECT_TRUE(q.claim(&a));
  EXPECT_TRUE(q.claim(&b));
  EXPECT_FALSE(q.claim(&c));
  q.release(&a);
  EXPECT_TRUE(q.claim(&c));
  q.release(&b);
  q.release(&c);
}

TEST(ShmQueue, MpmcConservationAcrossHandles) {
  QueueFile f("mpmc");
  ShmQ q;
  ShmOptions o;
  o.max_procs = 16;
  o.seg_cells = 256;
  o.rescue_slots = 32;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 4 << 20, o, &q), ArenaStatus::kOk);

  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 5000;
  ASSERT_GE(q.capacity(), kProducers * kPerProducer);

  std::atomic<bool> done{false};
  std::vector<std::vector<std::uint64_t>> got(kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      ShmQ::LocalHandle lh;
      ASSERT_TRUE(q.claim(&lh));
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Value encodes (producer, seq) for the per-producer FIFO check.
        ASSERT_EQ(q.enqueue(lh, (std::uint64_t(p) << 32) | (i + 1)),
                  ShmPush::kOk);
      }
      q.release(&lh);
    });
  }
  for (int cix = 0; cix < kConsumers; ++cix) {
    threads.emplace_back([&, cix] {
      ShmQ::LocalHandle lh;
      ASSERT_TRUE(q.claim(&lh));
      std::uint64_t v = 0;
      for (;;) {
        if (q.dequeue(lh, &v) == ShmPop::kOk) {
          got[cix].push_back(v);
        } else if (done.load(std::memory_order_acquire)) {
          if (q.dequeue(lh, &v) == ShmPop::kOk) {
            got[cix].push_back(v);
            continue;
          }
          break;
        } else {
          std::this_thread::yield();
        }
      }
      q.release(&lh);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  done.store(true, std::memory_order_release);
  for (int cix = 0; cix < kConsumers; ++cix) threads[kProducers + cix].join();

  // Exact conservation + per-producer FIFO within each consumer.
  std::vector<std::uint64_t> all;
  for (auto& g : got) {
    std::uint64_t last_seq[kProducers] = {};
    for (std::uint64_t v : g) {
      const int p = int(v >> 32);
      const std::uint64_t seq = v & 0xffffffffu;
      EXPECT_GT(seq, last_seq[p]) << "per-producer order violated";
      last_seq[p] = seq;
    }
    all.insert(all.end(), g.begin(), g.end());
  }
  ASSERT_EQ(all.size(), std::size_t(kProducers) * kPerProducer);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate delivery without any crash";
}

TEST(ShmQueue, PopWaitUnblocksOnEnqueue) {
  QueueFile f("popwait");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, small_opts(), &q),
            ArenaStatus::kOk);
  std::uint64_t out = 0;
  // Timeout path first.
  EXPECT_FALSE(q.pop_wait_until(
      &out, std::chrono::steady_clock::now() + std::chrono::milliseconds(30)));

  std::thread waiter([&] {
    ShmQ::LocalHandle lh;
    ASSERT_TRUE(q.claim(&lh));
    std::uint64_t v = 0;
    EXPECT_TRUE(q.pop_wait_until(
        lh, &v, std::chrono::steady_clock::now() + std::chrono::seconds(10),
        [](std::uint64_t) {}));
    EXPECT_EQ(v, 77u);
    q.release(&lh);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(q.enqueue(77), ShmPush::kOk);
  waiter.join();
}

TEST(ShmQueue, PreHookRunsBeforeDelivery) {
  QueueFile f("prehook");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, small_opts(), &q),
            ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(123), ShmPush::kOk);
  std::uint64_t journaled = 0;
  std::uint64_t out = 0;
  ASSERT_EQ(q.dequeue(&out, [&](std::uint64_t v) { journaled = v; }),
            ShmPop::kOk);
  EXPECT_EQ(out, 123u);
  EXPECT_EQ(journaled, 123u);
}

// The idle-park probe: a consumer parked on a quiet queue calls
// maybe_recover() once per wait slice, and with stable (or same-process)
// membership that must NEVER escalate to a full recover() — escalations
// are what used to make an idle shm consumer burn CPU walking the slot
// table and rescue ring every 100ms.
TEST(ShmQueue, IdleMaybeRecoverNeverEscalatesWithStablePeers) {
  QueueFile f("idle_probe");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, small_opts(), &q),
            ArenaStatus::kOk);

  for (int i = 0; i < 200; ++i) EXPECT_EQ(q.maybe_recover(), 0u);
  EXPECT_EQ(q.recover_full_runs(), 0u);

  // Membership churn from a live attachment bumps peer_gen — the probe
  // resnapshots but still finds nothing dead (own-pid slots are excluded,
  // so a multi-handle process never polls itself either).
  ShmQ peer;
  ASSERT_EQ(ShmQ::attach(f.path.c_str(), &peer), ArenaStatus::kOk);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(q.maybe_recover(), 0u);
  EXPECT_EQ(q.recover_full_runs(), 0u);
  EXPECT_EQ(peer.recover_full_runs(), 0u);

  peer.detach();  // graceful release: another bump, still nobody dead
  for (int i = 0; i < 50; ++i) EXPECT_EQ(q.maybe_recover(), 0u);
  EXPECT_EQ(q.recover_full_runs(), 0u);
}

}  // namespace
