// Tests of the §3.6 memory-reclamation scheme: retired segments are freed,
// the segment footprint stays bounded under sustained traffic, hazard
// pointers block premature reclamation, and the cleaner lock recovers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "support/wf_test_peek.hpp"

namespace wfq {
namespace {

struct Seg8Traits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 8;
};

struct NoPoolTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 8;
  static constexpr std::size_t kSegmentPoolCap = 0;
};

TEST(WfReclamation, RetiredSegmentsAreFreed) {
  WfConfig cfg;
  cfg.max_garbage = 4;  // reclaim aggressively
  WFQueue<uint64_t, Seg8Traits> q(cfg);
  auto h = q.get_handle();
  // Push the indices through many segments with matching dequeues.
  constexpr uint64_t kOps = 8 * 200;
  for (uint64_t i = 0; i < kOps; ++i) {
    q.enqueue(h, i + 1);
    ASSERT_EQ(q.dequeue(h), i + 1);
  }
  // 200 segments' worth of cells consumed; with max_garbage = 4 the live
  // list must have been trimmed far below that.
  EXPECT_LT(q.live_segments(), 16u);
  OpStats s = q.stats();
  EXPECT_GT(s.segments_freed.load(), 100u);
}

TEST(WfReclamation, FootprintBoundedUnderSustainedMpmcTraffic) {
  WfConfig cfg;
  cfg.max_garbage = 8;
  WFQueue<uint64_t, Seg8Traits> q(cfg);
  constexpr unsigned kThreads = 6;
  constexpr uint64_t kOps = 20000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < kOps; ++i) {
        q.enqueue(h, t * kOps + i + 1);
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& t : ts) t.join();
  // Index space consumed: >= kThreads*kOps cells => >= 15000 segments.
  // The live list must be a tiny fraction of that. The bound is loose
  // (backlog + garbage allowance + helping overshoot) but catches a
  // reclamation scheme that silently stopped working.
  EXPECT_LT(q.live_segments(), 2000u);
  EXPECT_GT(q.stats().segments_freed.load(), 10000u);
}

TEST(WfReclamation, CleanerLockAlwaysReleased) {
  WfConfig cfg;
  cfg.max_garbage = 2;
  WFQueueCore<Seg8Traits> q(cfg);
  auto* h = q.register_handle();
  for (uint64_t i = 0; i < 8 * 100; ++i) {
    q.enqueue(h, i + 1);
    (void)q.dequeue(h);
  }
  // After quiescing, I must never be left at the -1 "cleaning" sentinel
  // (the paper's Listing 5 line 236 erratum would leave it wedged).
  EXPECT_GE(WfTestPeek::oldest_id(q), 0);
}

TEST(WfReclamation, HazardPointerProtectsHeldSegment) {
  // A thread parked on an old segment (hazard pointer set, as inside an
  // operation) must prevent that segment's reclamation even while other
  // threads chew through the index space.
  WfConfig cfg;
  cfg.max_garbage = 2;
  WFQueueCore<Seg8Traits> q(cfg);
  auto* parked = q.register_handle();
  auto* worker = q.register_handle();

  // Park: publish the hazard pointer at the current head segment, exactly
  // as a stalled dequeue would between its first lines and its FAA.
  auto* held = parked->head.load();
  parked->rcl.hzdp.store(held);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const int64_t held_id = held->id;

  for (uint64_t i = 0; i < 8 * 100; ++i) {
    q.enqueue(worker, i + 1);
    (void)q.dequeue(worker);
  }
  // The held segment must still be first (nothing before/at it reclaimed).
  EXPECT_LE(WfTestPeek::oldest_id(q), held_id);
  // Touch the held segment; ASan/valgrind would flag a use-after-free.
  EXPECT_EQ(held->id, held_id);

  // Unpark and let the worker trigger cleanup again: now it reclaims.
  parked->rcl.hzdp.store(nullptr);
  for (uint64_t i = 0; i < 8 * 50; ++i) {
    q.enqueue(worker, i + 1);
    (void)q.dequeue(worker);
  }
  EXPECT_GT(WfTestPeek::oldest_id(q), held_id);
}

TEST(WfReclamation, IdleHandleDoesNotBlockReclamationForever) {
  // §3.6 "Update head and tail pointers": a registered thread that stops
  // operating (hazard pointer clear, but stale head/tail) must not pin
  // segments — cleaners advance its pointers on its behalf.
  WfConfig cfg;
  cfg.max_garbage = 4;
  WFQueueCore<Seg8Traits> q(cfg);
  auto* idle = q.register_handle();  // never used again; hzdp stays null
  auto* worker = q.register_handle();
  const int64_t idle_seg_before = idle->head.load()->id;
  for (uint64_t i = 0; i < 8 * 200; ++i) {
    q.enqueue(worker, i + 1);
    (void)q.dequeue(worker);
  }
  EXPECT_GT(WfTestPeek::oldest_id(q), idle_seg_before + 4);
  // The idle handle's pointers were advanced by cleaners.
  EXPECT_GT(idle->head.load()->id, idle_seg_before);
  EXPECT_GT(idle->tail.load()->id, idle_seg_before);
  // And the idle thread can still operate correctly afterwards.
  q.enqueue(idle, 12345);
  uint64_t got = q.dequeue(idle);
  EXPECT_EQ(got, 12345u);
}

TEST(WfReclamation, MaxGarbageThresholdRespected) {
  // With a huge max_garbage nothing should be reclaimed.
  WfConfig cfg;
  cfg.max_garbage = 1 << 30;
  WFQueue<uint64_t, Seg8Traits> q(cfg);
  auto h = q.get_handle();
  for (uint64_t i = 0; i < 8 * 50; ++i) {
    q.enqueue(h, i + 1);
    (void)q.dequeue(h);
  }
  EXPECT_EQ(q.stats().segments_freed.load(), 0u);
  EXPECT_GE(q.live_segments(), 50u);
}

TEST(WfReclamation, SegmentPoolPlateausAllocations) {
  // With pooling (default traits), steady-state churn recycles retired
  // segments instead of round-tripping the allocator: total allocations
  // must plateau well below the number of segments consumed.
  WfConfig cfg;
  cfg.max_garbage = 2;
  WFQueue<uint64_t, Seg8Traits> q(cfg);
  auto h = q.get_handle();
  constexpr uint64_t kOps = 8 * 2000;  // 2000 segments' worth of indices
  for (uint64_t i = 0; i < kOps; ++i) {
    q.enqueue(h, i + 1);
    ASSERT_EQ(q.dequeue(h), i + 1);
  }
  // allocated - freed = live + pooled + spare; all small.
  EXPECT_LT(q.segments_outstanding(), 64);
  // The pool must actually have been recycling: far fewer allocations than
  // segments consumed. (Seg8Traits inherits the default pool cap.)
  auto& core = q.core();
  (void)core;
  EXPECT_LT(q.segments_outstanding() + q.stats().segments_freed.load() / 8,
            2000u)
      << "sanity: churn really spanned ~2000 segments";
}

TEST(WfReclamation, PoolDisabledFreesEverySegment) {
  WfConfig cfg;
  cfg.max_garbage = 2;
  WFQueue<uint64_t, NoPoolTraits> q(cfg);
  auto h = q.get_handle();
  for (uint64_t i = 0; i < 8 * 500; ++i) {
    q.enqueue(h, i + 1);
    ASSERT_EQ(q.dequeue(h), i + 1);
  }
  // Without pooling, outstanding = live list + spare only.
  EXPECT_LE(q.segments_outstanding(),
            int64_t(q.live_segments()) + 1);
  EXPECT_GT(q.stats().segments_freed.load(), 100u);
}

TEST(WfReclamation, ConcurrentCleanersElectExactlyOne) {
  // Many threads finishing dequeues race into cleanup(); the CAS(I, i, -1)
  // election plus restore must neither deadlock nor double-free (ASan
  // validates the latter).
  WfConfig cfg;
  cfg.max_garbage = 1;
  WFQueue<uint64_t, Seg8Traits> q(cfg);
  constexpr unsigned kThreads = 8;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < 5000; ++i) {
        q.enqueue(h, t * 5000 + i + 1);
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(q.stats().segments_freed.load(), 0u);
  auto h = q.get_handle();
  q.enqueue(h, 7);
  EXPECT_EQ(q.dequeue(h), 7u);
}

}  // namespace
}  // namespace wfq
