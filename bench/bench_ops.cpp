// google-benchmark micro-costs: single-threaded per-operation latency of
// every queue, the FAA primitive itself, and the §5.2 single-core claim
// (WF-10 beats LCRQ by ~65% on pairs at one thread thanks to the cheaper
// reclamation scheme — no per-operation fence vs hazard pointers).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/ccqueue.hpp"
#include "baselines/faaq.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "common/atomics.hpp"
#include "core/obstruction_queue.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "obs/metrics.hpp"

namespace {

void BM_FaaPrimitive(benchmark::State& state) {
  std::atomic<uint64_t> counter{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter.fetch_add(1, std::memory_order_seq_cst));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaaPrimitive);

void BM_EmulatedFaaPrimitive(benchmark::State& state) {
  std::atomic<uint64_t> counter{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfq::EmulatedFaa::fetch_add(
        counter, uint64_t{1}, std::memory_order_seq_cst));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatedFaaPrimitive);

void BM_Cas2Primitive(benchmark::State& state) {
  wfq::U128 cell{0, 0};
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wfq::cas2(&cell, wfq::U128{i, i}, wfq::U128{i + 1, i + 1}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Cas2Primitive);

/// Single-threaded enqueue-dequeue pair cost, the §5.2 comparison point.
template <class Queue>
void BM_PairSingleThread(benchmark::State& state) {
  Queue q;
  auto h = q.get_handle();
  uint64_t v = 1;
  for (auto _ : state) {
    q.enqueue(h, v++);
    benchmark::DoNotOptimize(q.dequeue(h));
  }
  state.SetItemsProcessed(2 * state.iterations());
}

using WfQ = wfq::WFQueue<uint64_t>;
using MsQ = wfq::baselines::MSQueue<uint64_t>;
using Lcrq = wfq::baselines::LCRQ<uint64_t>;
using CcQ = wfq::baselines::CCQueue<uint64_t>;
using MuQ = wfq::baselines::MutexQueue<uint64_t>;
using FaaQ = wfq::baselines::FAAQueue<uint64_t>;
using KpQ = wfq::baselines::KPQueue<uint64_t>;
using SimQ = wfq::baselines::SimQueue<uint64_t>;
using ScqQ = wfq::ScqQueue<uint64_t>;
using WcqQ = wfq::WcqQueue<uint64_t>;

BENCHMARK_TEMPLATE(BM_PairSingleThread, WfQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, Lcrq);

/// Same pair workload with the observability layer compiled in at its
/// production sampling rate (1-in-256 latency records on average, 4096-entry
/// rings). The acceptance bound is <2% regression vs BM_PairSingleThread<WfQ>
/// above; tools/ci.sh's obs leg compares the two. The queue's own histograms
/// also report the sampled per-op percentiles as counters, so the JSON output
/// carries p50/p99/p999 like every other bench binary.
struct MetricsTraits : wfq::DefaultWfTraits {
  using Metrics = wfq::obs::ObsMetrics<>;
};
using WfQMetrics = wfq::WFQueue<uint64_t, MetricsTraits>;

void BM_PairSingleThreadMetrics(benchmark::State& state) {
  WfQMetrics q;
  auto h = q.get_handle();
  uint64_t v = 1;
  for (auto _ : state) {
    q.enqueue(h, v++);
    benchmark::DoNotOptimize(q.dequeue(h));
  }
  state.SetItemsProcessed(2 * state.iterations());
  wfq::obs::ObsSnapshot snap = q.collect_obs();
  wfq::obs::LatencyHistogram pooled = snap.enq_ns;
  pooled.merge(snap.deq_ns);
  state.counters["p50_ns"] = double(pooled.percentile(0.50));
  state.counters["p99_ns"] = double(pooled.percentile(0.99));
  state.counters["p999_ns"] = double(pooled.percentile(0.999));
}
BENCHMARK(BM_PairSingleThreadMetrics);

BENCHMARK_TEMPLATE(BM_PairSingleThread, MsQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, CcQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, MuQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, FaaQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, KpQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, SimQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, ScqQ);
BENCHMARK_TEMPLATE(BM_PairSingleThread, WcqQ);

/// Empty-queue dequeue cost (the 50%-enqueues workload spends much of its
/// time here; §5.2 explains why the wait-free queue pays more than LCRQ).
template <class Queue>
void BM_EmptyDequeue(benchmark::State& state) {
  Queue q;
  auto h = q.get_handle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.dequeue(h));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_EmptyDequeue, MsQ);
BENCHMARK_TEMPLATE(BM_EmptyDequeue, CcQ);
BENCHMARK_TEMPLATE(BM_EmptyDequeue, MuQ);
// The rings belong here: SCQ's threshold makes an empty dequeue cheap and
// non-destructive (no index space burned), which is precisely the claim.
BENCHMARK_TEMPLATE(BM_EmptyDequeue, ScqQ);
BENCHMARK_TEMPLATE(BM_EmptyDequeue, WcqQ);
// Note: the wait-free queue and LCRQ burn index space per empty dequeue;
// their empty-dequeue cost appears in the 50%-enqueues figure instead of an
// unbounded-memory microbenchmark loop here.

/// Full-ring rejection cost: try_enqueue -> kFull on a ring at capacity is
/// the price a bounded producer pays per backpressure probe before it
/// parks (BlockingQueue retries this exact call under its EventCount).
template <class Queue>
void BM_TryEnqueueFull(benchmark::State& state) {
  Queue q(64);
  auto h = q.get_handle();
  uint64_t v = 1;
  while (q.try_enqueue(h, uint64_t{v}) == wfq::EnqueueResult::kOk) ++v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_enqueue(h, uint64_t{v}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_TryEnqueueFull, ScqQ);
BENCHMARK_TEMPLATE(BM_TryEnqueueFull, WcqQ);

/// Enqueue-only burst then dequeue-only drain (segment/ring growth paths).
template <class Queue>
void BM_BurstDrain(benchmark::State& state) {
  const int64_t burst = state.range(0);
  for (auto _ : state) {
    Queue q;
    auto h = q.get_handle();
    for (int64_t i = 0; i < burst; ++i) q.enqueue(h, i + 1);
    for (int64_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(q.dequeue(h));
    }
  }
  state.SetItemsProcessed(2 * burst * state.iterations());
}
BENCHMARK_TEMPLATE(BM_BurstDrain, WfQ)->Arg(10000);
BENCHMARK_TEMPLATE(BM_BurstDrain, Lcrq)->Arg(10000);
BENCHMARK_TEMPLATE(BM_BurstDrain, MsQ)->Arg(10000);

void BM_WfHandleRegistration(benchmark::State& state) {
  WfQ q;
  for (auto _ : state) {
    auto h = q.get_handle();  // freelist hit after the first iteration
    benchmark::DoNotOptimize(&h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WfHandleRegistration);

/// Batched pair cost at one thread: the amortization floor with zero
/// contention. The FAA is uncontended here, so this isolates the *other*
/// bulk savings — one segment walk per chunk and one handle-pointer
/// store per batch instead of per op. Items/s is per element.
template <class Queue>
void BM_BulkPairSingleThread(benchmark::State& state) {
  const std::size_t k = std::size_t(state.range(0));
  Queue q;
  auto h = q.get_handle();
  std::vector<uint64_t> vals(k), out(k);
  for (std::size_t j = 0; j < k; ++j) vals[j] = j + 1;
  for (auto _ : state) {
    q.enqueue_bulk(h, vals.data(), k);
    benchmark::DoNotOptimize(q.dequeue_bulk(h, out.data(), k));
  }
  state.SetItemsProcessed(2 * int64_t(k) * state.iterations());
}
BENCHMARK_TEMPLATE(BM_BulkPairSingleThread, WfQ)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_TEMPLATE(BM_BulkPairSingleThread, FaaQ)->Arg(8);
BENCHMARK_TEMPLATE(BM_BulkPairSingleThread, wfq::ObstructionQueue<uint64_t>)
    ->Arg(8);

}  // namespace

// BENCHMARK_MAIN, plus a translation of the repo-wide bench flags
// (bench_common.hpp contract) into google-benchmark's own:
//   --smoke         -> --benchmark_min_time=0.01
//   --json <file>   -> --benchmark_out=<file> --benchmark_out_format=json
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(std::size_t(argc) + 1);
  storage.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      storage.push_back("--benchmark_min_time=0.01");
    } else if (a == "--json" && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.push_back(a);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (auto& s : storage) args.push_back(s.data());
  int n = int(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
