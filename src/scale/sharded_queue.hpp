// ShardedQueue<Q>: N independent lanes of any ConcurrentQueue backend,
// composed into one queue that trades global FIFO for horizontal scale.
//
// The paper's queue funnels every operation through one FAA'd cache line;
// Figure 2 shows that line saturating around one socket. This layer is the
// classic answer ("No Cords Attached", PAPERS.md): run N sub-queues and
// relax the ordering contract just enough that operations on different
// lanes never touch the same line.
//
//   Enqueue   goes to the handle's *home lane* only. Homes are dealt
//             round-robin by one FAA at get_handle() time (amortized over a
//             handle's lifetime, not paid per op), optionally biased to
//             NUMA-local lanes under NumaMode::kLocal. One producer ->
//             one lane, so a producer's values stay FIFO relative to each
//             other no matter what the other lanes do.
//
//   Dequeue   drains the home lane first; only when it is empty does the
//             caller *steal*: a bounded sweep over the other lanes starting
//             from a position dealt by a second FAA (so concurrent stealers
//             fan out instead of convoying on lane 0). The sweep visits
//             every foreign lane at most once — if Q's dequeue takes at
//             most k steps, a ShardedQueue dequeue takes at most N*k plus
//             a constant: wait-freedom is preserved, multiplied by the
//             shard count, never lost.
//
//             The sweep is deliberately a FULL sweep before returning
//             nullopt. A partial scan would be faster but would break the
//             emptiness witness the blocking layer's close()/drain()
//             protocol relies on: after seal, lanes only shrink, so "every
//             lane observed empty within my dequeue's interval" is a sound
//             linearization of EMPTY — "three lanes observed empty" is not.
//
// Ordering contract (precisely):
//   * Per-lane linearizability. Each lane is its backend, verbatim; the
//     projection of a history onto any one lane (plus every EMPTY, see
//     below) is a linearizable queue history. The checker's sharded oracle
//     (src/checker/sharded_checker.hpp) verifies exactly this.
//   * Global relaxed FIFO. Values of one producer are dequeued in their
//     enqueue order (they share a lane). Values of different producers on
//     different lanes have NO cross-order guarantee.
//   * EMPTY is global. dequeue() returns nullopt only after observing
//     every lane empty within the call's interval, so a nullopt projects
//     soundly into every lane's history.
//   * No loss, no duplication — each lane's own guarantee, and stealing
//     moves consumers between lanes, never values.
//
// The Traits seams pass through untouched: Traits_ re-exports the inner
// backend's pack, so BlockingQueue<ShardedQueue<...>> finds the same
// Injector/Metrics providers it would find on the bare backend, and
// close()/drain(), fault injection and observability all come through the
// existing machinery unmodified (BlockingShardedQueue below).
//
// NUMA (src/scale/numa.hpp): under kInterleave/kLocal each lane is
// *constructed* by a thread temporarily bound to the lane's node, so
// first-touch faults the lane's initial segments — including its PR-4
// reserve_segments pool — on that node. The reserve pool thereby becomes
// per-node: lane i's emergency segments are local to the consumers that
// will drain lane i.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/align.hpp"
#include "core/op_stats.hpp"
#include "core/queue_concepts.hpp"
#include "harness/fault_inject.hpp"
#include "obs/metrics.hpp"
#include "scale/numa.hpp"

namespace wfq::scale {

/// Construction-time shape of a ShardedQueue. Lives apart from the inner
/// backend's config (WfConfig, ring capacity, ...) which is forwarded
/// separately; new knobs go at the end (positional-initializer rule).
struct ShardConfig {
  std::size_t shards = 0;  ///< lane count; 0 = auto (min(hw threads, 4))
  NumaMode numa_mode = NumaMode::kNone;

  std::size_t resolved_shards() const noexcept {
    if (shards != 0) return shards;
    const unsigned hw = hardware_threads();
    return hw < 4 ? std::size_t(hw ? hw : 1) : std::size_t(4);
  }
};

namespace detail {
template <class Q, class = void>
struct TraitsOfImpl {
  struct type {};
};
template <class Q>
struct TraitsOfImpl<Q, std::void_t<typename Q::Traits_>> {
  using type = typename Q::Traits_;
};
}  // namespace detail

template <class Q>
  requires ConcurrentQueue<Q>
class ShardedQueue {
 public:
  using value_type = typename Q::value_type;
  using InnerQueue = Q;
  /// Re-export the inner pack so generic layers (BlockingQueue, the soak's
  /// obs epilogue) resolve the same Injector/Metrics seams they would on Q.
  using Traits_ = typename detail::TraitsOfImpl<Q>::type;

  /// Declared capability bits (see queue_concepts.hpp). Wait-freedom is
  /// inherited: the sweep multiplies the inner step bound by the lane
  /// count, a constant for any one queue. Relaxed order is this layer's
  /// defining property.
  static constexpr bool kIsWaitFree = kQueueCaps<Q>.is_wait_free;
  static constexpr bool kRelaxedOrder = true;

 private:
  using T = value_type;
  using Injector = fault::InjectorOf<Traits_>;

  /// Steal counters outlive the handle that earned them (the registry /
  /// freelist pattern of BlockingQueue's BlockingRec): stats() reports
  /// steals from threads that already exited.
  struct alignas(kCacheLineSize) HandleRec {
    std::atomic<uint64_t> steal_attempts{0};
    std::atomic<uint64_t> steals{0};
    HandleRec* next_free = nullptr;
  };

  struct alignas(kCacheLineSize) Lane {
    std::unique_ptr<Q> q;
  };

 public:
  class Handle {
   public:
    Handle(Handle&&) noexcept = default;
    Handle& operator=(Handle&&) noexcept = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() {
      if (owner_) owner_->release_rec(rec_);
    }

    /// The lane this handle enqueues to (tests and the soak's imbalance
    /// report key on it).
    std::size_t home() const noexcept { return home_; }

   private:
    friend class ShardedQueue;
    Handle(ShardedQueue* owner, std::size_t home, HandleRec* rec,
           std::vector<typename Q::Handle> lanes)
        : owner_(owner), home_(home), rec_(rec), lanes_(std::move(lanes)) {}

    struct OwnerReset {
      void operator()(ShardedQueue*) const noexcept {}
    };
    // unique_ptr with a no-op deleter: gives Handle move-only semantics
    // and a self-nulling owner field without a custom move constructor.
    std::unique_ptr<ShardedQueue, OwnerReset> owner_;
    std::size_t home_ = 0;
    HandleRec* rec_ = nullptr;
    std::vector<typename Q::Handle> lanes_;  // one inner handle per lane
  };

  /// Builds `cfg.resolved_shards()` lanes, each constructed from a copy of
  /// `args`. Under kInterleave/kLocal the constructing thread is bound to
  /// the lane's node for the duration of that lane's construction (see the
  /// header comment on first-touch placement).
  template <class... Args>
  explicit ShardedQueue(const ShardConfig& cfg, const Args&... args)
      : cfg_(cfg), shards_(cfg.resolved_shards()), lanes_(shards_) {
    const NumaTopology& topo = NumaTopology::get();
    for (std::size_t i = 0; i < shards_; ++i) {
      const int node = node_for_lane(topo, cfg_.numa_mode, i);
      if (node >= 0) {
        NumaBinder bind(topo, node);
        lanes_[i].q = std::make_unique<Q>(args...);
      } else {
        lanes_[i].q = std::make_unique<Q>(args...);
      }
    }
  }

  ShardedQueue() : ShardedQueue(ShardConfig{}) {}
  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  std::size_t shards() const noexcept { return shards_; }
  NumaMode numa_mode() const noexcept { return cfg_.numa_mode; }

  Handle get_handle() {
    std::vector<typename Q::Handle> inner;
    inner.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i) {
      inner.push_back(lanes_[i].q->get_handle());
    }
    return Handle(this, pick_home(), acquire_rec(), std::move(inner));
  }

  /// Home-lane enqueue. Return type is the backend's own (bool on WFQueue
  /// under the OOM protocol, void on most baselines) — the sharded layer
  /// adds no failure modes of its own on this path.
  decltype(auto) enqueue(Handle& h, T v) {
    return lanes_[h.home_].q->enqueue(h.lanes_[h.home_], std::move(v));
  }

  /// Home lane first, then one full steal sweep (see header: the full
  /// sweep is what makes nullopt a sound global EMPTY).
  std::optional<T> dequeue(Handle& h) {
    if (auto v = lanes_[h.home_].q->dequeue(h.lanes_[h.home_])) return v;
    if (shards_ == 1) return std::nullopt;
    const std::size_t start =
        steal_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_;
    for (std::size_t i = 0; i < shards_; ++i) {
      std::size_t lane = start + i;
      if (lane >= shards_) lane -= shards_;
      if (lane == h.home_) continue;
      WFQ_INJECT(Traits_, "shard_steal_scan");
      h.rec_->steal_attempts.fetch_add(1, std::memory_order_relaxed);
      if (auto v = lanes_[lane].q->dequeue(h.lanes_[lane])) {
        h.rec_->steals.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
    }
    return std::nullopt;
  }

  /// dequeue() plus the lane the value came from — the fuzz/checker entry
  /// point (lane tags feed the per-lane linearizability oracle).
  std::optional<std::pair<T, std::size_t>> dequeue_traced(Handle& h) {
    if (auto v = lanes_[h.home_].q->dequeue(h.lanes_[h.home_])) {
      return std::make_pair(std::move(*v), h.home_);
    }
    if (shards_ == 1) return std::nullopt;
    const std::size_t start =
        steal_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_;
    for (std::size_t i = 0; i < shards_; ++i) {
      std::size_t lane = start + i;
      if (lane >= shards_) lane -= shards_;
      if (lane == h.home_) continue;
      WFQ_INJECT(Traits_, "shard_steal_scan");
      h.rec_->steal_attempts.fetch_add(1, std::memory_order_relaxed);
      if (auto v = lanes_[lane].q->dequeue(h.lanes_[lane])) {
        h.rec_->steals.fetch_add(1, std::memory_order_relaxed);
        return std::make_pair(std::move(*v), lane);
      }
    }
    return std::nullopt;
  }

  // ---- Batched span ops (present iff the backend batches) ---------------

  decltype(auto) enqueue_bulk(Handle& h, const T* vals, std::size_t n)
    requires BulkQueue<Q>
  {
    return lanes_[h.home_].q->enqueue_bulk(h.lanes_[h.home_], vals, n);
  }

  std::size_t dequeue_bulk(Handle& h, T* out, std::size_t n)
    requires BulkQueue<Q>
  {
    std::size_t got =
        lanes_[h.home_].q->dequeue_bulk(h.lanes_[h.home_], out, n);
    if (got == n || shards_ == 1) return got;
    const std::size_t start =
        steal_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_;
    for (std::size_t i = 0; i < shards_ && got < n; ++i) {
      std::size_t lane = start + i;
      if (lane >= shards_) lane -= shards_;
      if (lane == h.home_) continue;
      WFQ_INJECT(Traits_, "shard_steal_scan");
      h.rec_->steal_attempts.fetch_add(1, std::memory_order_relaxed);
      std::size_t stolen =
          lanes_[lane].q->dequeue_bulk(h.lanes_[lane], out + got, n - got);
      if (stolen > 0) {
        h.rec_->steals.fetch_add(stolen, std::memory_order_relaxed);
        got += stolen;
      }
    }
    return got;
  }

  // ---- Bounded contract (present iff the backend is bounded) ------------
  // Backpressure is per-lane: kFull means the *home* lane is full. This is
  // deliberate — spilling an enqueue to a sibling lane would silently break
  // the per-producer FIFO half of the ordering contract.

  EnqueueResult try_enqueue(Handle& h, T v)
    requires BoundedQueue<Q>
  {
    return lanes_[h.home_].q->try_enqueue(h.lanes_[h.home_], std::move(v));
  }

  std::size_t capacity() const
    requires BoundedQueue<Q>
  {
    std::size_t total = 0;
    for (const Lane& l : lanes_) total += l.q->capacity();
    return total;
  }

  /// Heuristic occupancy: sum of the lanes' own approximations. Monitoring
  /// only (each lane's estimate is already non-linearizable).
  uint64_t approx_size() const
    requires requires(const Q& q) { q.approx_size(); }
  {
    uint64_t total = 0;
    for (const Lane& l : lanes_) total += l.q->approx_size();
    return total;
  }

  // ---- Stats / observability (present iff the backend reports) ----------

  OpStats stats() const
    requires wfq::detail::HasStats<Q>
  {
    OpStats s;
    for (const Lane& l : lanes_) s.add(l.q->stats());
    std::lock_guard<std::mutex> g(rec_mu_);
    for (const auto& r : recs_) {
      s.steal_attempts.fetch_add(
          r->steal_attempts.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      s.steals.fetch_add(r->steals.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
    return s;
  }

  /// Per-lane completed-operation counts (enqueues + dequeues), for the
  /// soak's steal-starvation / imbalance report.
  std::vector<uint64_t> lane_loads() const
    requires wfq::detail::HasStats<Q>
  {
    std::vector<uint64_t> loads;
    loads.reserve(shards_);
    for (const Lane& l : lanes_) {
      OpStats s = l.q->stats();
      loads.push_back(s.enqueues() + s.dequeues());
    }
    return loads;
  }

  /// Per-handle state (latency histograms, per-handle trace rings) is
  /// per-lane and merges across all lanes; the segment-layer trace ring is
  /// PROCESS-GLOBAL (Metrics::global_ring()), so it must be absorbed from
  /// exactly one lane — double-absorbing it would multiply those events/
  /// totals by the lane count and fail the soak's exact trace/counter
  /// agreement audit. Backends exposing the include_global_ring parameter
  /// get it from lane 0 only; others (no shared ring) merge plainly.
  obs::ObsSnapshot collect_obs() const
    requires requires(const Q& q) { q.collect_obs(); }
  {
    obs::ObsSnapshot snap;
    bool first = true;
    for (const Lane& l : lanes_) {
      obs::ObsSnapshot part;
      if constexpr (requires(const Q& q) { q.collect_obs(false); }) {
        part = l.q->collect_obs(/*include_global_ring=*/first);
      } else {
        part = l.q->collect_obs();
      }
      first = false;
      snap.enq_ns.merge(part.enq_ns);
      snap.deq_ns.merge(part.deq_ns);
      snap.enq_bulk_ns.merge(part.enq_bulk_ns);
      snap.deq_bulk_ns.merge(part.deq_bulk_ns);
      snap.pop_wait_ns.merge(part.pop_wait_ns);
      for (const auto& e : part.events) snap.events.push_back(e);
      for (std::size_t i = 0; i < obs::kTraceEventCount; ++i) {
        snap.totals[i] += part.totals[i];
      }
      snap.dropped += part.dropped;
    }
    snap.sort_events();
    return snap;
  }

  /// Direct lane access for tests and the differential fuzzer (lane
  /// histories are checked against the backend's own oracle).
  Q& lane(std::size_t i) noexcept { return *lanes_[i].q; }
  const Q& lane(std::size_t i) const noexcept { return *lanes_[i].q; }

 private:
  std::size_t pick_home() {
    if (cfg_.numa_mode == NumaMode::kLocal) {
      const NumaTopology& topo = NumaTopology::get();
      if (topo.num_nodes() > 1) {
        // Lanes are placed round-robin over nodes, so the lanes on this
        // thread's node are {node, node + nodes, node + 2*nodes, ...}.
        // Deal among them with a second FAA to spread same-node handles.
        const std::size_t nodes = std::size_t(topo.num_nodes());
        const std::size_t node =
            std::size_t(current_node(topo)) % nodes;
        const std::size_t local_lanes = (shards_ + nodes - 1 - node) / nodes;
        if (local_lanes > 0) {
          const std::size_t k =
              local_cursor_.fetch_add(1, std::memory_order_relaxed) %
              local_lanes;
          return node + k * nodes;
        }
      }
    }
    return next_home_.fetch_add(1, std::memory_order_relaxed) % shards_;
  }

  HandleRec* acquire_rec() {
    std::lock_guard<std::mutex> g(rec_mu_);
    if (free_recs_) {
      HandleRec* r = free_recs_;
      free_recs_ = r->next_free;
      r->next_free = nullptr;
      return r;
    }
    recs_.push_back(std::make_unique<HandleRec>());
    return recs_.back().get();
  }

  void release_rec(HandleRec* r) noexcept {
    if (!r) return;
    // Counters intentionally survive on the freelist: a reused rec keeps
    // accumulating, and stats() reads the registry, not live handles.
    std::lock_guard<std::mutex> g(rec_mu_);
    r->next_free = free_recs_;
    free_recs_ = r;
  }

  ShardConfig cfg_;
  std::size_t shards_;
  std::vector<Lane> lanes_;

  alignas(kCacheLineSize) std::atomic<uint64_t> next_home_{0};
  alignas(kCacheLineSize) std::atomic<uint64_t> local_cursor_{0};
  alignas(kCacheLineSize) std::atomic<uint64_t> steal_cursor_{0};

  mutable std::mutex rec_mu_;
  std::vector<std::unique_ptr<HandleRec>> recs_;
  HandleRec* free_recs_ = nullptr;
};

}  // namespace wfq::scale

namespace wfq {
/// Promote the main alias into wfq:: alongside the other backends.
using scale::NumaMode;
using scale::ShardConfig;
using scale::ShardedQueue;
}  // namespace wfq
