// Multi-producer/multi-consumer correctness of the wait-free queue:
// no value lost, none duplicated, per-producer FIFO order preserved.
// Parameterized (TEST_P) over thread mix, patience and segment size.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "core/wf_queue.hpp"

namespace wfq {
namespace {

// Payload encoding: (producer id << 40) | sequence. Producer ids and
// sequence numbers stay well below their field widths.
constexpr uint64_t make_val(unsigned producer, uint64_t seq) {
  return (uint64_t(producer) << 40) | (seq + 1);
}
constexpr unsigned val_producer(uint64_t v) {
  return unsigned(v >> 40);
}
constexpr uint64_t val_seq(uint64_t v) {
  return (v & ((uint64_t{1} << 40) - 1)) - 1;
}

struct MpmcParam {
  unsigned producers;
  unsigned consumers;
  unsigned patience;
  uint64_t per_producer;
};

template <class Traits>
void run_mpmc(const MpmcParam& p) {
  WfConfig cfg;
  cfg.patience = p.patience;
  cfg.max_garbage = 8;
  WFQueue<uint64_t, Traits> q(cfg);
  const uint64_t total = p.per_producer * p.producers;

  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> producers_done{false};
  // consumed_by[c] collects what consumer c saw, in its local order.
  std::vector<std::vector<uint64_t>> consumed_by(p.consumers);

  std::vector<std::thread> threads;
  for (unsigned pi = 0; pi < p.producers; ++pi) {
    threads.emplace_back([&, pi] {
      auto h = q.get_handle();
      for (uint64_t s = 0; s < p.per_producer; ++s) {
        q.enqueue(h, make_val(pi, s));
      }
    });
  }
  for (unsigned ci = 0; ci < p.consumers; ++ci) {
    threads.emplace_back([&, ci] {
      auto h = q.get_handle();
      auto& mine = consumed_by[ci];
      mine.reserve(total / p.consumers + 16);
      while (consumed.load(std::memory_order_relaxed) < total) {
        auto v = q.dequeue(h);
        if (v.has_value()) {
          mine.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) &&
                   consumed.load(std::memory_order_relaxed) >= total) {
          break;
        }
      }
    });
  }
  // Join producers (the first p.producers threads), flag, join consumers.
  for (unsigned i = 0; i < p.producers; ++i) threads[i].join();
  producers_done.store(true, std::memory_order_release);
  for (unsigned i = p.producers; i < threads.size(); ++i) threads[i].join();

  ASSERT_EQ(consumed.load(), total);

  // (1) No loss, no duplication: every (producer, seq) seen exactly once.
  std::vector<std::vector<bool>> seen(p.producers,
                                      std::vector<bool>(p.per_producer, false));
  for (auto& vec : consumed_by) {
    for (uint64_t v : vec) {
      unsigned prod = val_producer(v);
      uint64_t seq = val_seq(v);
      ASSERT_LT(prod, p.producers);
      ASSERT_LT(seq, p.per_producer);
      ASSERT_FALSE(seen[prod][seq])
          << "value (" << prod << ", " << seq << ") dequeued twice";
      seen[prod][seq] = true;
    }
  }
  // (2) FIFO: within one consumer, sequences from one producer must be
  // increasing (a sound necessary condition for queue linearizability).
  for (unsigned ci = 0; ci < p.consumers; ++ci) {
    std::vector<int64_t> last(p.producers, -1);
    for (uint64_t v : consumed_by[ci]) {
      unsigned prod = val_producer(v);
      auto seq = int64_t(val_seq(v));
      ASSERT_GT(seq, last[prod])
          << "consumer " << ci << " saw producer " << prod
          << " out of order: " << seq << " after " << last[prod];
      last[prod] = seq;
    }
  }
}

class WfMpmc : public ::testing::TestWithParam<MpmcParam> {};

TEST_P(WfMpmc, NoLossNoDupFifo) {
  run_mpmc<DefaultWfTraits>(GetParam());
}

struct SmallSegTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 16;
};

struct LlscTraits : DefaultWfTraits {
  using Faa = EmulatedFaa;
};

struct ScTraits : DefaultWfTraits {
  static constexpr bool kConservativeOrdering = true;
};

TEST_P(WfMpmc, NoLossNoDupFifoSmallSegments) {
  // Small segments maximize list churn and reclamation pressure.
  run_mpmc<SmallSegTraits>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadMixes, WfMpmc,
    ::testing::Values(
        MpmcParam{1, 1, 10, 20000},   // SPSC
        MpmcParam{4, 1, 10, 8000},    // MPSC
        MpmcParam{1, 4, 10, 8000},    // SPMC
        MpmcParam{4, 4, 10, 5000},    // MPMC, paper default patience
        MpmcParam{4, 4, 0, 5000},     // WF-0: slow path stressed
        MpmcParam{4, 4, 1, 5000},     // near-zero patience
        MpmcParam{8, 8, 10, 2000},    // oversubscribed on small hosts
        MpmcParam{8, 8, 0, 2000},     // oversubscribed + WF-0
        MpmcParam{2, 6, 10, 5000},    // consumer-heavy (EMPTY churn)
        MpmcParam{6, 2, 10, 5000}),   // producer-heavy (backlog growth)
    [](const ::testing::TestParamInfo<MpmcParam>& info) {
      auto& p = info.param;
      return "p" + std::to_string(p.producers) + "c" +
             std::to_string(p.consumers) + "pat" + std::to_string(p.patience);
    });

TEST(WfMpmcExtra, EmulatedFaaUnderContention) {
  MpmcParam p{4, 4, 10, 3000};
  run_mpmc<LlscTraits>(p);
}

TEST(WfMpmcExtra, ConservativeOrderingUnderContention) {
  MpmcParam p{4, 4, 10, 3000};
  run_mpmc<ScTraits>(p);
}

TEST(WfMpmcExtra, EnqueueDequeuePairsWorkload) {
  // The paper's first benchmark shape as a correctness test: each thread
  // alternates enqueue/dequeue; totals must balance.
  WFQueue<uint64_t> q;
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPairs = 4000;
  std::atomic<uint64_t> dequeued_values{0};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      uint64_t got = 0;
      for (uint64_t i = 0; i < kPairs; ++i) {
        q.enqueue(h, make_val(t, i));
        if (q.dequeue(h).has_value()) ++got;
      }
      dequeued_values.fetch_add(got);
    });
  }
  for (auto& t : ts) t.join();
  // Drain what's left; enqueued == dequeued overall.
  auto h = q.get_handle();
  uint64_t rest = 0;
  while (q.dequeue(h).has_value()) ++rest;
  EXPECT_EQ(dequeued_values.load() + rest, uint64_t{kThreads} * kPairs);
}

}  // namespace
}  // namespace wfq
