file(REMOVE_RECURSE
  "CMakeFiles/bench_llsc.dir/bench_llsc.cpp.o"
  "CMakeFiles/bench_llsc.dir/bench_llsc.cpp.o.d"
  "bench_llsc"
  "bench_llsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_llsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
