#!/usr/bin/env bash
# CI driver: build + test the repo in three configurations.
#
#   1. default      — RelWithDebInfo, full ctest suite
#   2. asan         — AddressSanitizer (leak detection on), full ctest suite
#                     (incl. tests/sync: parked threads must not leak waiter
#                     registrations); this is what proves the segment-backed
#                     queues do not leak segments
#   3. tsan         — ThreadSanitizer, core subset only (`ctest -L tsan`:
#                     common/core/memory tests plus test_sync — the
#                     futex/EventCount/BlockingQueue suite is labeled tsan
#                     because the Dekker park/notify race is exactly what
#                     TSan exists to check); the full suite under TSan's
#                     ~10x slowdown exceeds practical CI budgets
#   4. bench        — smoke leg: every bench binary runs ~1 s under --smoke
#                     (RelWithDebInfo, reuses the default config's build) so
#                     the flag surface (--smoke/--json) and the measurement
#                     harness cannot bitrot between releases. Additionally
#                     verifies bench_wakeup's --json records the no-waiter
#                     overhead ratio (the §10 acceptance metric behind the
#                     committed BENCH_wakeup.json) and runs a short
#                     close()/drain() blocking soak.
#   5. faults       — robustness leg: the fault-injection suites (stall /
#                     crash / alloc-fail scripts, orphan adoption, OOM debt
#                     protocol) under fixed seeds via WFQ_FAULT_SEED, in the
#                     default and ASan trees plus one TSan pass; three
#                     seeded `soak --inject` runs with exact conservation
#                     checks; and a NullInjector zero-footprint check — a
#                     release bench binary must not contain any injection
#                     point-name string (WFQ_INJECT's `if constexpr` must
#                     have discarded them all).
#   7. backends     — QueueBackend-concept leg: the concept-conformance
#                     build (every backend's static_assert fires at compile
#                     time; the QueueConcepts suite re-checks the caps at
#                     runtime), the bounded-backend suites (SCQ/wCQ rings:
#                     property tests, bounded blocking contract, ring fault
#                     matrix) in the default, ASan and TSan trees, one
#                     seeded `--backend wcq --inject` chaos soak with exact
#                     conservation, live differential fuzzing of each
#                     backend through the checker, and a grep check that
#                     wf_queue_core.hpp stays free of the handle-
#                     registration scaffolding HandleRegistry absorbed.
#   8. fig2         — raw-speed regression leg: rebuilds bench_fig2, reruns
#                     the Figure-2 sweep under the pinned WFQ_* environment
#                     the committed BENCH_fig2.json was generated with, and
#                     gates it through tools/bench_diff (>5% CI-aware
#                     throughput loss or p99 inflation on the WF-*/F&A rows
#                     fails). Also greps that the adaptive-controller trace
#                     strings ("obs:patience_*") stayed out of NullMetrics
#                     bench binaries, with tools/soak as positive control.
#   9. scale        — sharded-layer leg: the scale suites (ShardedQueue
#                     semantics, NUMA probe/binder, sharded oracle) plus the
#                     sharded fault matrix in the default, ASan and TSan
#                     trees; a seeded `--backend sharded --inject` chaos
#                     soak with the per-lane imbalance audit; the two-part
#                     sharded checker differential (1-lane strict FIFO +
#                     2-lane lane-tagged oracle episodes); and a schema
#                     check of the committed BENCH_sharded.json scaling
#                     sweep.
#  10. ipc          — cross-process shared-memory leg: the ipc suites
#                     (arena header validation incl. the byte-identical
#                     version-mismatch reject, shm queue semantics, the
#                     fork+SIGKILL crash matrix) in the default and ASan
#                     trees (no TSan — fork-then-die choreography and TSan
#                     do not mix); three seeded `soak --shm --kill9` chaos
#                     runs with real worker processes and the exact
#                     conservation audit; and a grep guard that src/ipc/
#                     headers never link arena structures with raw
#                     pointers — only ShmOffset survives an mmap at a
#                     different base address.
#  11. async        — coroutine-layer leg: the tests/async/ suites
#                     (pop_async/push_async rounds, executor seam,
#                     select_any arbitration, resume-vs-destruction races,
#                     async history-checker enrollment) in the default,
#                     ASan and TSan trees — the round protocol is pure
#                     claim/cancel/resume racing, exactly TSan's beat; a
#                     coro_server smoke run (epoll loop, three coroutine
#                     stages, select_any collector, exact conservation);
#                     and a parse check that the committed BENCH_wakeup.json
#                     and a fresh --json run both carry the coroutine-
#                     resume handoff percentiles (p50/p99/p999) beside the
#                     futex parked-handoff row.
#   6. obs          — observability leg: NullMetrics zero-footprint check
#                     (no "obs:" trace-event name may survive into a bench
#                     binary built without the metrics traits), the obs
#                     test suite in the default and TSan trees (histogram/
#                     trace-ring recording is relaxed-atomics-only by
#                     design — TSan proves it), traced soaks whose Chrome
#                     trace JSON is schema-validated, and a parse check of
#                     the committed BENCH_*.json latency columns.
#
# Usage: tools/ci.sh [default|asan|tsan|bench|faults|obs|backends|fig2|scale|ipc|async]...
#        (no args = all)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
CONFIGS=("$@")
[ ${#CONFIGS[@]} -eq 0 ] && \
  CONFIGS=(default asan tsan bench faults obs backends fig2 scale ipc async)

# The per-run environment the committed BENCH_fig2.json was generated
# under (as the per-row best of FIG2_RUNS such runs — see bench_diff
# --merge); the fig2 gate reruns the sweep the same way so tools/bench_diff
# compares like with like. Regeneration command: docs/BENCHMARKING.md
# ("Figure 2 methodology").
FIG2_ENV=(WFQ_THREADS=1,2,4 WFQ_OPS=20000 WFQ_INVOCATIONS=3
          WFQ_ITERATIONS=4 WFQ_WINDOW=3 WFQ_WARMUP=1 WFQ_NO_DELAY=1)
FIG2_RUNS=3

fig2_gate() {
  # Rerun the Figure-2 sweep FIG2_RUNS times from an already-built tree and
  # diff the per-row best against the committed baseline. Gated rows: the
  # raw-speed claim (WF-* and F&A). Three layers absorb shared-host noise
  # without blinding the gate to real regressions: best-of-N (a CPU-steal
  # burst only pushes rows down), --drift-correct (the median ratio cancels
  # whole-machine speed differences, including baseline-host vs CI-host),
  # and the baseline-CI-aware floor. WFQ_BENCH_TOL widens the throughput
  # tolerance further for known-noisy hosts.
  local dir=$1
  local scratch i
  scratch=$(mktemp -d)
  local runs=()
  for i in $(seq "${FIG2_RUNS}"); do
    echo "== [fig2] fresh sweep ${i}/${FIG2_RUNS} (pinned env) =="
    env "${FIG2_ENV[@]}" "${dir}/bench/bench_fig2" --smoke \
      --json "${scratch}/fig2_${i}.json" >/dev/null 2>&1
    runs+=("${scratch}/fig2_${i}.json")
  done
  echo "== [fig2] regression gate vs BENCH_fig2.json =="
  tools/bench_diff BENCH_fig2.json "${runs[@]}" --drift-correct \
    --tolerance "${WFQ_BENCH_TOL:-0.05}" --gate '/(WF-|F&A)'
  rm -rf "${scratch}"
}

run_fig2() {
  local dir="build-ci-default"
  echo "== [fig2] configure+build =="
  cmake -B "${dir}" -S . >/dev/null
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  fig2_gate "${dir}"

  # The adaptive controllers ride the same zero-cost seams as the rest of
  # the observability layer: their trace-event names must be discarded from
  # NullMetrics builds (tools/soak links the metrics traits and is the
  # positive control proving the grep catches leakage).
  echo "== [fig2] NullMetrics adaptive footprint check =="
  if grep -qE "obs:patience_(raise|drop)" "${dir}/bench/bench_pairs"; then
    echo "FAIL: adaptive-controller trace names found in release" \
         "bench_pairs — the patience sampling is no longer zero-cost" >&2
    exit 1
  fi
  if ! grep -q "obs:patience_raise" "${dir}/tools/soak"; then
    echo "FAIL: positive control broken — tools/soak links the metrics" \
         "traits and must contain obs:patience_raise" >&2
    exit 1
  fi
  echo "  bench_pairs is adaptive-string-free (soak positive control intact)"
  echo "== [fig2] OK =="
}

run_config() {
  local name=$1
  shift
  local dir="build-ci-${name}"
  echo "== [${name}] configure =="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== [${name}] build =="
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "== [${name}] test =="
  case "${name}" in
    tsan)
      # TSAN_OPTIONS halt_on_error keeps a race from scrolling past.
      (cd "${dir}" && TSAN_OPTIONS=halt_on_error=1 \
        ctest -L tsan --output-on-failure -j "${JOBS}")
      ;;
    asan)
      (cd "${dir}" && ASAN_OPTIONS=detect_leaks=1 \
        ctest --output-on-failure -j "${JOBS}")
      ;;
    *)
      (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
      ;;
  esac
  echo "== [${name}] OK =="
}

run_bench_smoke() {
  # Reuse (or make) the default config's tree, then run every bench binary
  # for ~1 s. `--json` output goes to a scratch file and is checked for
  # JSON well-formedness when python3 is around.
  local dir="build-ci-default"
  echo "== [bench] configure+build =="
  cmake -B "${dir}" -S . >/dev/null
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "== [bench] smoke =="
  local scratch
  scratch=$(mktemp -d)
  local b
  for b in "${dir}"/bench/bench_*; do
    [ -x "${b}" ] || continue
    local name
    name=$(basename "${b}")
    case "${name}" in
      bench_platform) "${b}" >/dev/null ;;  # no flags; already ~1 s
      *) "${b}" --smoke --json "${scratch}/${name}.json" \
           >/dev/null 2>&1 ;;
    esac
    echo "  ${name} OK"
  done
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${scratch}" <<'EOF'
import json, pathlib, sys
for p in pathlib.Path(sys.argv[1]).glob("*.json"):
    recs = json.load(p.open())
    if p.stem == "bench_wakeup":
        # The acceptance metric behind the committed BENCH_wakeup.json:
        # the smoke run must still emit the no-waiter overhead ratio.
        assert any(r.get("config") == "no_waiter_ratio" for r in recs), \
            "bench_wakeup --json lost the no_waiter_ratio records"
print("  --json outputs parse (bench_wakeup ratio records present)")
EOF
  fi
  rm -rf "${scratch}"
  echo "== [bench] soak (blocking close/drain, 2 s) =="
  "${dir}/tools/soak" 2 2 block
  fig2_gate "${dir}"
  echo "== [bench] OK =="
}

run_faults() {
  # The fault suites (test_fault: scripted stall/crash/alloc-fail matrix,
  # handle-release hardening, bounded-memory-under-stall, OOM seam + debt
  # protocol) are seeded through WFQ_FAULT_SEED — fixed seeds here so a CI
  # failure is reproducible verbatim with
  #   WFQ_FAULT_SEED=<s> ctest -R 'Fault|HandleRelease'
  local seeds=(1 7 1234)
  local regex='Fault|HandleRelease'
  local dir s

  for dir in build-ci-default build-ci-asan; do
    case "${dir}" in
      *asan) echo "== [faults] configure+build (asan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=address >/dev/null ;;
      *) echo "== [faults] configure+build (default) =="
         cmake -B "${dir}" -S . >/dev/null ;;
    esac
    cmake --build "${dir}" -j "${JOBS}" >/dev/null
    for s in "${seeds[@]}"; do
      echo "== [faults] ${dir} seed ${s} =="
      (cd "${dir}" && WFQ_FAULT_SEED=${s} ASAN_OPTIONS=detect_leaks=1 \
        ctest -R "${regex}" --output-on-failure -j "${JOBS}")
    done
  done

  # One TSan pass: the injector's stall/release handshake and the debt
  # table's seq_cst publication protocol are cross-thread by construction.
  echo "== [faults] configure+build (tsan) =="
  cmake -B build-ci-tsan -S . -DWFQ_SANITIZE=thread >/dev/null
  cmake --build build-ci-tsan -j "${JOBS}" >/dev/null
  echo "== [faults] tsan seed 1234 =="
  (cd build-ci-tsan && WFQ_FAULT_SEED=1234 TSAN_OPTIONS=halt_on_error=1 \
    ctest -R "${regex}" --output-on-failure -j "${JOBS}")

  # Seeded chaos soaks: random injection scripts riding real MPMC traffic,
  # with the soak's own exact-conservation checksum as the oracle.
  for s in "${seeds[@]}"; do
    echo "== [faults] soak --inject ${s} (2 s, 4x4 threads) =="
    build-ci-default/tools/soak --inject "${s}" 2 4
  done

  # NullInjector zero-footprint check: in a production build every
  # WFQ_INJECT site sits in a discarded `if constexpr` branch, so not one
  # point-name string may survive into a bench binary. (tools/soak is the
  # wrong target — it links the ScriptedInjector variant for --inject.)
  echo "== [faults] NullInjector footprint check =="
  if grep -q "enq_slow_published" build-ci-default/bench/bench_ops; then
    echo "FAIL: injection point names found in release bench_ops —" \
         "NullInjector is no longer compiling to nothing" >&2
    exit 1
  fi
  echo "  bench_ops is injection-string-free"
  echo "== [faults] OK =="
}

run_obs() {
  # Observability leg.
  #   1. NullMetrics zero-footprint: DefaultWfTraits compiles every
  #      recording site into a discarded `if constexpr (Metrics::kEnabled)`
  #      branch and the "obs:"-prefixed event names live only in
  #      trace_export.hpp, so a bench binary that doesn't opt in must not
  #      contain a single "obs:" string. bench_pairs is the target —
  #      bench_ops is the wrong one, since it deliberately links a
  #      metrics-enabled contender as the overhead control; that makes
  #      tools/soak (which exports traces) the positive control proving
  #      the grep would actually catch leakage.
  #   2. The obs/OpStats/C-API-stats tests in the default tree and under
  #      TSan.
  #   3. Traced soaks: one seeded chaos soak and one blocking soak with
  #      --metrics --trace. The soak binary itself fails on any mismatch
  #      between trace-event totals and OpStats counters (oom_rescue,
  #      adoption, parks, slow paths — exact equality, not bounds); here
  #      the emitted Chrome trace JSON is additionally schema-validated.
  #   4. The committed BENCH_*.json artifacts still parse and carry the
  #      latency percentile columns.
  local dir="build-ci-default"
  echo "== [obs] configure+build (default) =="
  cmake -B "${dir}" -S . >/dev/null
  cmake --build "${dir}" -j "${JOBS}" >/dev/null

  echo "== [obs] NullMetrics footprint check =="
  # "obs:[a-z]" matches exactly the event-name strings ("obs:enq_slow", …)
  # and not the "wfq::obs::" type names RelWithDebInfo's debug info always
  # carries (those have a second colon after "obs:").
  if grep -qE "obs:[a-z]" "${dir}/bench/bench_pairs"; then
    echo "FAIL: obs trace-event names found in release bench_pairs —" \
         "NullMetrics is no longer compiling to nothing" >&2
    exit 1
  fi
  if ! grep -q "obs:enq_slow" "${dir}/tools/soak"; then
    echo "FAIL: positive control broken — tools/soak links the metrics" \
         "traits and must contain obs: event names" >&2
    exit 1
  fi
  echo "  bench_pairs is obs-string-free (soak positive control intact)"

  local regex='LatencyHistogram|TraceRing|ObsSnapshot|ObsQueue|ObsTraceExport|OpStats|CApiStatsEx|CApiTrace'
  echo "== [obs] tests (default) =="
  (cd "${dir}" && ctest -R "${regex}" --output-on-failure -j "${JOBS}")

  echo "== [obs] configure+build (tsan) =="
  cmake -B build-ci-tsan -S . -DWFQ_SANITIZE=thread >/dev/null
  cmake --build build-ci-tsan -j "${JOBS}" >/dev/null
  echo "== [obs] tests (tsan) =="
  (cd build-ci-tsan && TSAN_OPTIONS=halt_on_error=1 \
    ctest -R "${regex}" --output-on-failure -j "${JOBS}")

  local scratch
  scratch=$(mktemp -d)
  echo "== [obs] traced soak --inject 1234 (2 s, 4x4 threads) =="
  "${dir}/tools/soak" --inject 1234 2 4 --trace "${scratch}/inject.json"
  echo "== [obs] traced blocking soak --metrics (2 s) =="
  "${dir}/tools/soak" 2 2 block --metrics --trace "${scratch}/block.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${scratch}/inject.json" "${scratch}/block.json" \
      BENCH_bulk.json BENCH_wakeup.json BENCH_bounded.json \
      BENCH_fig2.json BENCH_adaptive.json BENCH_sharded.json <<'EOF'
import json, sys
from collections import Counter

for path in sys.argv[1:3]:
    doc = json.load(open(path))
    evs = doc["traceEvents"]
    other = doc["otherData"]
    totals = other["totals"]
    assert all(e["ph"] == "i" for e in evs), "non-instant trace event"
    assert all(e["name"].startswith("obs:") for e in evs)
    ts = [e["ts"] for e in evs]
    assert ts == sorted(ts), "trace events not time-ordered"
    assert int(other["dropped"]) >= 0
    # Wrap-around may drop records but never inflates them: the retained
    # window can't show more of a type than its exact total.
    seen = Counter(e["name"][len("obs:"):] for e in evs)
    for name, n in seen.items():
        assert n <= int(totals[name]), f"{name}: retained {n} > total"
    for key, h in other["histograms"].items():
        assert h["p50_ns"] <= h["p99_ns"] <= h["p999_ns"], key
    name = path.split("/")[-1]
    print(f"  {name}: {len(evs)} events, totals/percentiles consistent")

for path in sys.argv[3:]:
    recs = json.load(open(path))
    assert recs, f"{path} is empty"
    for r in recs:
        assert {"bench", "config", "threads", "mops"} <= r.keys(), path
        assert "p50_ns" in r and "p99_ns" in r and "p999_ns" in r, \
            f"{path} lost its latency columns"
    print(f"  {path}: {len(recs)} records, latency columns present")
EOF
  fi
  rm -rf "${scratch}"
  echo "== [obs] OK =="
}

run_backends() {
  # QueueBackend-concept leg. Building any tree IS the conformance check —
  # queue_concepts.hpp static_asserts every backend at compile time — but
  # the ctest pass below re-proves the QueueCaps claims at runtime and
  # exercises the bounded family end to end:
  #   QueueConcepts        caps + bounded contract (kFull keeps the value)
  #   AllQueues<Scq|Wcq*>  property tests through the typed backend list
  #   BoundedBlocking      push_wait parking / close() / capacity-exact MPMC
  #   WcqFault|ScqFault    ring fault matrix (stall, crash, adoption,
  #                        bounded memory under a forever-stalled thread)
  local regex='QueueConcepts|ScqFactory|WcqFactory|WcqSlowPathFactory'
  regex+='|BoundedBlocking|WcqFault|ScqFault'
  local dir

  for dir in build-ci-default build-ci-asan build-ci-tsan; do
    case "${dir}" in
      *asan) echo "== [backends] configure+build (asan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=address >/dev/null ;;
      *tsan) echo "== [backends] configure+build (tsan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=thread >/dev/null ;;
      *) echo "== [backends] configure+build (default) =="
         cmake -B "${dir}" -S . >/dev/null ;;
    esac
    cmake --build "${dir}" -j "${JOBS}" >/dev/null
    echo "== [backends] ${dir} bounded suites =="
    case "${dir}" in
      *asan) (cd "${dir}" && ASAN_OPTIONS=detect_leaks=1 \
               ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
      *tsan) (cd "${dir}" && TSAN_OPTIONS=halt_on_error=1 \
               ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
      *) (cd "${dir}" && ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
    esac
  done

  # Chaos soak against the bounded wait-free ring: the wcq_*/ring_* points
  # become reachable, and accounting must still balance exactly.
  echo "== [backends] soak --backend wcq --inject 7 (2 s, 2x2 threads) =="
  build-ci-default/tools/soak --backend wcq --inject 7 2 2

  # Live differential fuzzing: every backend's recorded histories through
  # both linearizability checkers (faa's fabricated-value histories drive
  # the rejection paths; the real queues must come back linearizable).
  local b
  for b in wf faa obstruction scq wcq; do
    echo "== [backends] fuzz_checker --backend ${b} (2 s) =="
    build-ci-default/tools/fuzz_checker --backend "${b}" 2
  done

  # The dedup half of the refactor, grep-enforced: WFQueueCore must not
  # regrow the handle-registration ring / free-list / registration-mutex
  # scaffolding it used to duplicate from SegmentQueueBase — that now
  # lives only in HandleRegistry.
  echo "== [backends] wf_queue_core.hpp scaffolding check =="
  if grep -qE "free_handles_|all_handles_|handle_mutex_" \
       src/core/wf_queue_core.hpp; then
    echo "FAIL: handle-registration scaffolding is back in" \
         "wf_queue_core.hpp — use HandleRegistry instead" >&2
    exit 1
  fi
  if ! grep -q "HandleRegistry" src/core/wf_queue_core.hpp; then
    echo "FAIL: wf_queue_core.hpp no longer uses HandleRegistry —" \
         "the scaffolding grep above is guarding the wrong seam" >&2
    exit 1
  fi
  echo "  wf_queue_core.hpp is scaffolding-free (HandleRegistry in use)"
  echo "== [backends] OK =="
}

run_scale() {
  # Sharded-layer leg. The regex picks up the whole surface: ShardedQueue
  # semantics + BlockingSharded lifecycle (tests/scale), the NUMA probe /
  # binder / lane-placement unit tests, the sharded oracle (hand-built and
  # live lane-tagged histories), the steal-path fault matrix (ShardedFault:
  # close-while-stealing, crash of a stealing thread), and the relaxed_order
  # capability assertions riding in the concepts suite.
  local regex='Sharded|Numa|CpulistParser|NodeForLane|CurrentNode'
  local dir

  for dir in build-ci-default build-ci-asan build-ci-tsan; do
    case "${dir}" in
      *asan) echo "== [scale] configure+build (asan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=address >/dev/null ;;
      *tsan) echo "== [scale] configure+build (tsan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=thread >/dev/null ;;
      *) echo "== [scale] configure+build (default) =="
         cmake -B "${dir}" -S . >/dev/null ;;
    esac
    cmake --build "${dir}" -j "${JOBS}" >/dev/null
    echo "== [scale] ${dir} sharded suites =="
    case "${dir}" in
      *asan) (cd "${dir}" && ASAN_OPTIONS=detect_leaks=1 \
               ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
      *tsan) (cd "${dir}" && TSAN_OPTIONS=halt_on_error=1 \
               ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
      *) (cd "${dir}" && ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
    esac
  done

  # Chaos soak across lanes: the same seeded schedule as the wf leg, but
  # the shard_steal_scan point is reachable and the summary must pass the
  # per-lane imbalance audit on top of exact close()/drain() conservation.
  echo "== [scale] soak --backend sharded --inject 7 (2 s, 4x4 threads) =="
  build-ci-default/tools/soak --backend sharded --inject 7 2 4
  echo "== [scale] soak --backend sharded (2 s, 4x4 threads) =="
  build-ci-default/tools/soak --backend sharded 2 4

  # Two-part checker differential: 1-lane ShardedQueue through the strict
  # FIFO checkers, then 2-lane lane-tagged episodes through the sharded
  # oracle (any rejection is a queue bug with a replayable seed).
  echo "== [scale] fuzz_checker --backend sharded (4 s) =="
  build-ci-default/tools/fuzz_checker --backend sharded 4

  # The committed scaling sweep must parse and still carry the headline
  # configs (WF-10 baseline + the s=4 lane sweep) with latency columns.
  if command -v python3 >/dev/null 2>&1; then
    echo "== [scale] BENCH_sharded.json schema check =="
    python3 - BENCH_sharded.json <<'EOF'
import json, sys
recs = json.load(open(sys.argv[1]))
assert recs, "BENCH_sharded.json is empty"
configs = {r["config"] for r in recs}
assert "WF-10" in configs, "baseline WF-10 rows missing"
assert "Sharded-WF s=4" in configs, "Sharded-WF s=4 rows missing"
for r in recs:
    assert {"bench", "config", "threads", "mops"} <= r.keys()
    assert "p50_ns" in r and "p99_ns" in r and "p999_ns" in r, \
        "BENCH_sharded.json lost its latency columns"
print(f"  BENCH_sharded.json: {len(recs)} records, "
      f"{len(configs)} configs, latency columns present")
EOF
  fi
  echo "== [scale] OK =="
}

run_ipc() {
  # Cross-process shared-memory leg. The crash matrix forks children that
  # die by real SIGKILL at armed injection points, so it runs in the
  # default and ASan trees only — under TSan a SIGKILLed child's runtime
  # state is meaningless and the tool deadlocks in the forked child.
  local regex='ShmArena|ShmQueue|ShmCrash|CapiError|CapiShm'
  local dir

  for dir in build-ci-default build-ci-asan; do
    case "${dir}" in
      *asan) echo "== [ipc] configure+build (asan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=address >/dev/null ;;
      *) echo "== [ipc] configure+build (default) =="
         cmake -B "${dir}" -S . >/dev/null ;;
    esac
    cmake --build "${dir}" -j "${JOBS}" >/dev/null
    echo "== [ipc] ${dir} shm suites =="
    case "${dir}" in
      *asan) (cd "${dir}" && ASAN_OPTIONS=detect_leaks=1 \
               ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
      *) (cd "${dir}" && ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
    esac
  done

  # Kill-9 chaos soaks: real processes, real SIGKILL at seeded shm_*
  # points, respawn, survivor-side recovery, exact conservation audit
  # (acked values delivered, nothing fabricated, dups bounded by kills,
  # every child exits clean or by the scheduled SIGKILL).
  local s
  for s in 1 7 1234; do
    echo "== [ipc] soak --shm --kill9 ${s} (3 s, 4 procs) =="
    build-ci-default/tools/soak --shm --kill9 "${s}" 3 4
  done

  # The whole crash-robustness story rests on one invariant: nothing inside
  # the arena is a raw pointer, because every process maps the file at a
  # different base address. Atomic pointer fields are how that invariant
  # would regress (a std::atomic<T*> link silently works single-process).
  # offset_ptr.hpp is exempt: it implements the offset<->pointer boundary.
  echo "== [ipc] raw-pointer-in-arena grep guard =="
  if grep -nE 'std::atomic<[A-Za-z_][A-Za-z0-9_: ]*\*[ ]*>' \
       src/ipc/shm_queue.hpp src/ipc/shm_arena.hpp; then
    echo "FAIL: raw pointer atomic found in an shm arena structure —" \
         "intra-arena links must be ShmOffset (see offset_ptr.hpp)" >&2
    exit 1
  fi
  if ! grep -q 'AtomicShmOffset' src/ipc/shm_queue.hpp; then
    echo "FAIL: positive control broken — shm_queue.hpp should link its" \
         "segment directory with AtomicShmOffset fields" >&2
    exit 1
  fi
  echo "  src/ipc arena structures are offset-only (positive control intact)"
  echo "== [ipc] OK =="
}

run_async() {
  # Coroutine layer (src/async/). The suites carry the layer's hostile
  # races — resume-vs-destruction, co_await across close(), select_any
  # winner claims — so they run under all three trees: default for
  # semantics, ASan for frame lifetime (a resume on a destroyed frame is
  # a heap-use-after-free), TSan for the claim/park phase protocol.
  local regex='AsyncQueue|SelectAny'
  local dir

  for dir in build-ci-default build-ci-asan build-ci-tsan; do
    case "${dir}" in
      *asan) echo "== [async] configure+build (asan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=address >/dev/null ;;
      *tsan) echo "== [async] configure+build (tsan) =="
             cmake -B "${dir}" -S . -DWFQ_SANITIZE=thread >/dev/null ;;
      *) echo "== [async] configure+build (default) =="
         cmake -B "${dir}" -S . >/dev/null ;;
    esac
    cmake --build "${dir}" -j "${JOBS}" >/dev/null
    echo "== [async] ${dir} async suites =="
    case "${dir}" in
      *asan) (cd "${dir}" && ASAN_OPTIONS=detect_leaks=1 \
               ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
      *tsan) (cd "${dir}" && TSAN_OPTIONS=halt_on_error=1 \
               ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
      *) (cd "${dir}" && ctest -R "${regex}" --output-on-failure -j "${JOBS}") ;;
    esac
  done

  # coro_server smoke: the epoll event-loop pipeline end to end (three
  # coroutine stages, select_any fan-in, close() cascade) with its exact
  # conservation audit as the pass/fail signal.
  echo "== [async] coro_server smoke (50k requests) =="
  WFQ_OPS=50000 build-ci-default/examples/coro_server

  # BENCH_wakeup.json must carry the coroutine-resume handoff percentiles
  # beside the futex parked-handoff row — in the committed file AND in a
  # fresh --json run (so the row can't silently rot out of the binary).
  echo "== [async] BENCH_wakeup.json coro-resume row check =="
  WFQ_THREADS=1 WFQ_OPS=20000 \
    build-ci-default/bench/bench_wakeup --smoke --json /tmp/wakeup-async.json \
    >/dev/null
  python3 - BENCH_wakeup.json /tmp/wakeup-async.json <<'EOF'
import json, sys
for path in sys.argv[1:]:
    recs = json.load(open(path))
    rows = [r for r in recs if r["config"] == "coro_resume_handoff"]
    assert rows, f"{path}: no coro_resume_handoff row"
    for r in rows:
        for k in ("p50_ns", "p99_ns", "p999_ns"):
            assert isinstance(r.get(k), (int, float)), \
                f"{path}: coro_resume_handoff missing numeric {k}"
    parked = [r for r in recs if r["config"] == "parked_handoff"]
    assert parked, f"{path}: parked_handoff baseline row missing"
    print(f"  {path}: coro_resume_handoff p50={rows[0]['p50_ns']:.0f}ns "
          f"(futex parked p50={parked[0]['p50_ns']:.0f}ns)")
EOF
  echo "== [async] OK =="
}

for cfg in "${CONFIGS[@]}"; do
  case "${cfg}" in
    default) run_config default ;;
    asan) run_config asan -DWFQ_SANITIZE=address ;;
    tsan) run_config tsan -DWFQ_SANITIZE=thread ;;
    bench) run_bench_smoke ;;
    faults) run_faults ;;
    obs) run_obs ;;
    backends) run_backends ;;
    fig2) run_fig2 ;;
    scale) run_scale ;;
    ipc) run_ipc ;;
    async) run_async ;;
    *)
      echo "unknown config '${cfg}' (want default|asan|tsan|bench|faults|obs|backends|fig2|scale|ipc|async)" >&2
      exit 2
      ;;
  esac
done
echo "All configs passed."
