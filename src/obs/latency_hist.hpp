// Wait-free log-bucketed latency histogram (HDR-style).
//
// One histogram per (handle, operation kind). Recording is a single relaxed
// fetch_add on an uncontended (owner-only) cache-resident counter — safe
// inside a wait-free operation, readable concurrently by a snapshot thread.
//
// Bucketization: values below 2^kLinearBits map linearly (exact); above,
// each power-of-two range is split into kSubBuckets sub-ranges (the top
// kSubBits bits after the leading one select the sub-bucket), giving a
// bounded relative error of 1/kSubBuckets (25%) everywhere. With 128
// buckets the top bucket starts at ~2^33 ns (~8.6 s) — everything slower
// saturates there, which for queue-operation latencies means "pathological,
// go look at the trace ring" either way.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace wfq::obs {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 2;                 ///< 4 sub-buckets
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  static constexpr unsigned kLinearBits = kSubBits + 1;   ///< values < 8: exact
  static constexpr std::size_t kBuckets = 128;

  /// Bucket index for value `v` (saturating at kBuckets - 1).
  static constexpr std::size_t bucket_index(uint64_t v) noexcept {
    if (v < (uint64_t{1} << kLinearBits)) return std::size_t(v);
    const unsigned e = std::bit_width(v) - 1;  // exponent, >= kLinearBits
    const unsigned sub = unsigned(v >> (e - kSubBits)) & (kSubBuckets - 1);
    const std::size_t idx =
        (uint64_t{1} << kLinearBits) +
        std::size_t(e - kLinearBits) * kSubBuckets + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  /// Smallest value mapping to bucket `idx` (inverse of bucket_index).
  static constexpr uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < (uint64_t{1} << kLinearBits)) return uint64_t(idx);
    const std::size_t off = idx - (std::size_t{1} << kLinearBits);
    const unsigned e = kLinearBits + unsigned(off / kSubBuckets);
    const unsigned sub = unsigned(off % kSubBuckets);
    return (uint64_t{1} << e) | (uint64_t(sub) << (e - kSubBits));
  }

  /// One past the largest value mapping to bucket `idx` (the top bucket is
  /// open-ended; UINT64_MAX stands in for infinity).
  static constexpr uint64_t bucket_upper(std::size_t idx) noexcept {
    return idx + 1 < kBuckets ? bucket_lower(idx + 1) : ~uint64_t{0};
  }

  /// Record one sample. Wait-free: one relaxed increment.
  void record(uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Fold `o` into this histogram (relaxed snapshot semantics, like
  /// OpStats::add). Associative and commutative by construction — the
  /// merged histogram is the bucket-wise sum regardless of merge order.
  void merge(const LatencyHistogram& o) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      uint64_t v = o.buckets_[i].load(std::memory_order_relaxed);
      if (v != 0) buckets_[i].fetch_add(v, std::memory_order_relaxed);
    }
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  uint64_t count() const noexcept {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  uint64_t bucket_count(std::size_t idx) const noexcept {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

  /// Nearest-rank percentile, p in [0, 1]; returns the midpoint of the
  /// bucket holding the rank (the bucket's bounded relative error applies).
  /// 0 when the histogram is empty.
  uint64_t percentile(double p) const noexcept {
    const uint64_t n = count();
    if (n == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    uint64_t rank = uint64_t(p * double(n - 1));  // 0-based nearest rank
    uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen > rank) {
        const uint64_t lo = bucket_lower(i);
        const uint64_t hi = bucket_upper(i);
        return hi == ~uint64_t{0} ? lo : lo + (hi - lo) / 2;
      }
    }
    return bucket_lower(kBuckets - 1);  // unreachable if count() was stable
  }

  /// Copyable as a relaxed snapshot, mirroring OpStats.
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram& o) noexcept { *this = o; }
  LatencyHistogram& operator=(const LatencyHistogram& o) noexcept {
    reset();
    merge(o);
    return *this;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

}  // namespace wfq::obs
