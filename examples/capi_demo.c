/* Pure-C demonstration of the wait-free queue bindings: compiled as C
 * (this file is C, not C++), proving the extern "C" surface links.
 *
 *   $ ./capi_demo
 */
#include <inttypes.h>
#include <pthread.h>
#include <stdio.h>

#include "capi/wfq_c.h"

#define N_THREADS 4
#define OPS_PER_THREAD 20000

static wfq_queue_t* queue;
static uint64_t consumed_sum[N_THREADS];
static uint64_t produced_sum[N_THREADS];

static void* worker(void* arg) {
  long tid = (long)arg;
  wfq_handle_t* h = wfq_handle_acquire(queue);
  uint64_t out;
  int i;
  for (i = 0; i < OPS_PER_THREAD; ++i) {
    uint64_t v = ((uint64_t)tid << 32) | (uint64_t)(i + 1);
    if (wfq_enqueue(h, v) != 0) {
      fprintf(stderr, "reserved value rejected unexpectedly\n");
      break;
    }
    produced_sum[tid] += v;
    if (wfq_dequeue(h, &out) == 1) {
      consumed_sum[tid] += out;
    }
  }
  wfq_handle_release(h);
  return 0;
}

int main(void) {
  pthread_t threads[N_THREADS];
  long t;
  uint64_t produced = 0, consumed = 0, out;
  wfq_handle_t* h;
  wfq_stats_t stats;

  queue = wfq_create_default();
  if (!queue) return 1;

  for (t = 0; t < N_THREADS; ++t) {
    pthread_create(&threads[t], 0, worker, (void*)t);
  }
  for (t = 0; t < N_THREADS; ++t) {
    pthread_join(threads[t], 0);
  }

  /* Drain the backlog and check conservation. */
  h = wfq_handle_acquire(queue);
  while (wfq_dequeue(h, &out) == 1) consumed += out;
  wfq_handle_release(h);
  for (t = 0; t < N_THREADS; ++t) {
    produced += produced_sum[t];
    consumed += consumed_sum[t];
  }

  wfq_get_stats(queue, &stats);
  printf("C API: %" PRIu64 " enqueues, %" PRIu64 " dequeues, conservation %s\n",
         stats.enqueues, stats.dequeues,
         produced == consumed ? "OK" : "FAILED");
  printf("       slow enq %" PRIu64 ", slow deq %" PRIu64 ", empty %" PRIu64
         ", segments freed %" PRIu64 "\n",
         stats.slow_enqueues, stats.slow_dequeues, stats.empty_dequeues,
         stats.segments_freed);

  wfq_destroy(queue);
  return produced == consumed ? 0 : 1;
}
