// Tests for the concurrent-history recorder.
#include "checker/history.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/mutex_queue.hpp"

namespace wfq::lin {
namespace {

TEST(History, TimestampsAreOrderedWithinAnOperation) {
  HistoryRecorder rec;
  auto* log = rec.make_log(0);
  uint64_t ts = log->invoke();
  log->complete(OpKind::kEnqueue, 42, ts);
  auto ops = rec.collect();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_LT(ops[0].invoke_ts, ops[0].respond_ts);
  EXPECT_EQ(ops[0].kind, OpKind::kEnqueue);
  EXPECT_EQ(ops[0].value, 42u);
  EXPECT_EQ(ops[0].thread, 0u);
}

TEST(History, SequentialOpsAreTotallyOrdered) {
  HistoryRecorder rec;
  auto* log = rec.make_log(0);
  for (int i = 0; i < 10; ++i) {
    uint64_t ts = log->invoke();
    log->complete(OpKind::kEnqueue, i + 1, ts);
  }
  auto ops = rec.collect();
  ASSERT_EQ(ops.size(), 10u);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_TRUE(precedes(ops[i - 1], ops[i]));
  }
}

TEST(History, PrecedesIsRealTimeOrder) {
  Op a{OpKind::kEnqueue, 0, 1, 0, 5};
  Op b{OpKind::kEnqueue, 1, 2, 6, 9};
  Op c{OpKind::kEnqueue, 1, 3, 3, 8};  // overlaps a
  EXPECT_TRUE(precedes(a, b));
  EXPECT_FALSE(precedes(b, a));
  EXPECT_FALSE(precedes(a, c));
  EXPECT_FALSE(precedes(c, a));
}

TEST(History, ConcurrentRecordingCollectsEverything) {
  HistoryRecorder rec;
  constexpr unsigned kThreads = 6;
  constexpr int kOps = 2000;
  std::vector<HistoryRecorder::ThreadLog*> logs;
  for (unsigned t = 0; t < kThreads; ++t) logs.push_back(rec.make_log(t));
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        uint64_t s = logs[t]->invoke();
        logs[t]->complete(OpKind::kEnqueue, uint64_t(t) * kOps + i, s);
      }
    });
  }
  for (auto& t : ts) t.join();
  auto ops = rec.collect();
  EXPECT_EQ(ops.size(), std::size_t{kThreads} * kOps);
  // Timestamps must be unique (FAA-issued).
  std::vector<uint64_t> all;
  for (auto& op : ops) {
    all.push_back(op.invoke_ts);
    all.push_back(op.respond_ts);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(History, RecordedHelpersTagKindsCorrectly) {
  HistoryRecorder rec;
  auto* log = rec.make_log(0);
  baselines::MutexQueue<uint64_t> q;
  auto h = q.get_handle();
  recorded_enqueue(q, h, log, 9);
  EXPECT_TRUE(recorded_dequeue(q, h, log));
  EXPECT_FALSE(recorded_dequeue(q, h, log));
  auto ops = rec.collect();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, OpKind::kEnqueue);
  EXPECT_EQ(ops[1].kind, OpKind::kDequeue);
  EXPECT_EQ(ops[1].value, 9u);
  EXPECT_EQ(ops[2].kind, OpKind::kDequeueEmpty);
}

}  // namespace
}  // namespace wfq::lin
