// The injection matrix: every named point in the catalog × every
// destructive action, run against the full stack (BlockingQueue over
// WFQueue over WFQueueCore), with the outcome validated by set accounting
// and — whenever the history is complete — the linearizability oracle in
// src/checker/.
//
// Accounting contract being verified:
//   * a push that returned kOk is dequeued EXACTLY once (no loss, no dup),
//     except that a crash on a dequeue-side point may strand or drop a
//     bounded number of already-claimed values (bounded by the batch size,
//     and counted in orphan_drops when an adopter did the dropping);
//   * a push in flight at the moment of a crash appears 0 or 1 times;
//   * with no crash (stalls, delays, primed allocation failures) the
//     accounting is EXACT — stalls must not lose operations (wait-freedom
//     with helping) and allocation failures must not consume values (the
//     OOM contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "checker/history.hpp"
#include "checker/queue_checker.hpp"
#include "core/wf_queue.hpp"
#include "fault/fault_test_util.hpp"
#include "sync/blocking_queue.hpp"

namespace wfq {
namespace {

using fault_test::Inj;

struct MatrixTraits : fault_test::FaultTraits {
  static constexpr std::size_t kSegmentSize = 64;
};
using MQ = sync::BlockingQueue<WFQueue<uint64_t, MatrixTraits>>;
using sync::PopStatus;
using sync::PushStatus;

constexpr std::size_t kBulkPush = 4;
constexpr std::size_t kBulkPop = 3;
constexpr uint64_t kPendingTs = ~uint64_t{0};  // synthetic op never responded

uint64_t val(unsigned tid, uint64_t seq) {
  return (uint64_t(tid + 1) << 40) | seq;
}

struct Outcome {
  std::vector<uint64_t> pushed_ok;  // values whose push returned kOk
  std::vector<uint64_t> in_flight;  // values mid-push when the crash hit
  std::vector<uint64_t> popped;     // every value popped anywhere
  std::vector<lin::Op> history;     // completed ops + synthetic pending enqs
  uint64_t fired = 0;
  uint64_t crashes = 0;
  uint64_t stalls = 0;
  uint64_t orphan_drops = 0;
  uint64_t adopted = 0;
  bool victim_crashed = false;
};

// Points where a crash kills a dequeuer that has already FAA'd past (or
// claimed) values: those values are stranded or adopter-dropped. Bounded by
// the bulk batch size; everything else must account exactly.
bool deq_loss_point(const char* p) {
  static constexpr const char* kLossy[] = {
      "deq_faa_post",      "deq_help_peer",    "deq_slow_published",
      "help_enq_sealed",   "help_deq_scan",    "help_deq_announced",
      "deq_bulk_faa_post", "seg_alloc_try",    "seg_extend",
      "reclaim_elected",   "reclaim_frontier_set",
  };
  for (const char* q : kLossy) {
    if (std::strcmp(p, q) == 0) return true;
  }
  return false;
}

// Points the victim's scripted sequence passes unconditionally (before any
// earlier armed point could end it): the experiment must observe a firing.
bool deterministic_point(const char* p) {
  static constexpr const char* kAlways[] = {
      "enq_begin",         "enq_faa_post",      "deq_begin",
      "deq_faa_post",      "enq_bulk_faa_post", "deq_bulk_faa_post",
      "blk_push_ticket",   "blk_pre_enqueue",   "blk_pop_prepark",
      "blk_close_pre_seal",
  };
  for (const char* q : kAlways) {
    if (std::strcmp(p, q) == 0) return true;
  }
  return false;
}

Outcome run_experiment(const char* point, fault::Action action,
                       uint64_t arg) {
  fault_test::ScriptReset script;
  EXPECT_TRUE(Inj::arm(point, action, /*budget=*/1, arg));

  MQ q(WfConfig{/*patience=*/0, /*max_garbage=*/2, /*reserve=*/2});
  Outcome out;
  lin::HistoryRecorder rec;
  lin::HistoryRecorder::ThreadLog* vlog = rec.make_log(0);
  lin::HistoryRecorder::ThreadLog* hlog[2] = {rec.make_log(1),
                                              rec.make_log(2)};
  lin::HistoryRecorder::ThreadLog* mlog = rec.make_log(3);

  std::atomic<bool> helpers_go{false};
  std::atomic<bool> victim_done{false};
  std::mutex merge_mu;
  // (value, invoke_ts) of pushes in flight on the victim when it crashed.
  std::vector<std::pair<uint64_t, uint64_t>> pending_enq;

  std::thread victim([&] {
    Inj::set_victim(true);
    std::vector<uint64_t> pushed, popped;
    std::vector<std::pair<uint64_t, uint64_t>> in_flight;
    auto pop1 = [&](MQ::Handle& h) {
      uint64_t ts = vlog->invoke();
      try {
        if (auto v = q.try_pop(h)) {
          vlog->complete(lin::OpKind::kDequeue, *v, ts);
          popped.push_back(*v);
        } else {
          vlog->complete(lin::OpKind::kDequeueEmpty, 0, ts);
        }
      } catch (const std::bad_alloc&) {
      }
    };
    try {
      MQ::Handle h = q.get_handle();
      // Phase 1 (queue empty, helpers not yet running): a timed pop that
      // must park — the only deterministic road to blk_pop_prepark.
      // park_only skips the spin/yield escalation, whose per-iteration
      // deadline checks can otherwise burn the whole timeout under a
      // loaded scheduler without ever reaching the pre-park step; when
      // this experiment is the one asserting the point fired, a generous
      // deadline closes the residual descheduling window.
      {
        uint64_t ts = vlog->invoke();
        uint64_t v = 0;
        const auto timeout =
            std::strcmp(point, "blk_pop_prepark") == 0
                ? std::chrono::milliseconds(200)
                : std::chrono::milliseconds(2);
        try {
          PopStatus st =
              q.pop_wait_for(h, v, timeout, sync::WaitPolicy::park_only());
          if (st == PopStatus::kOk) {
            vlog->complete(lin::OpKind::kDequeue, v, ts);
            popped.push_back(v);
          }
          // kTimeout: no effect, record nothing. kClosed cannot happen yet.
        } catch (const std::bad_alloc&) {
        }
      }
      helpers_go.store(true, std::memory_order_release);
      // Phase 2: mixed singles, batches, and pops.
      for (uint64_t seq = 1; seq <= 48; ++seq) {
        uint64_t v = val(0, seq);
        uint64_t ts = vlog->invoke();
        in_flight.assign(1, {v, ts});
        PushStatus st = q.push_status(h, v);
        in_flight.clear();
        if (st == PushStatus::kOk) {
          vlog->complete(lin::OpKind::kEnqueue, v, ts);
          pushed.push_back(v);
        }
        if (seq % 6 == 0) {
          uint64_t batch[kBulkPush];
          uint64_t bts = vlog->invoke();
          for (uint64_t j = 0; j < kBulkPush; ++j) {
            batch[j] = val(0, 1000 + seq * 10 + j);
            in_flight.emplace_back(batch[j], bts);
          }
          std::size_t committed = q.push_bulk(h, batch, kBulkPush);
          in_flight.clear();
          for (std::size_t j = 0; j < committed; ++j) {
            vlog->complete(lin::OpKind::kEnqueue, batch[j], bts);
            pushed.push_back(batch[j]);
          }
        }
        if (seq % 5 == 0) pop1(h);
        if (seq % 16 == 0) {
          uint64_t buf[kBulkPop];
          uint64_t bts = vlog->invoke();
          try {
            std::size_t got = q.try_pop_bulk(h, buf, kBulkPop);
            for (std::size_t j = 0; j < got; ++j) {
              vlog->complete(lin::OpKind::kDequeue, buf[j], bts);
              popped.push_back(buf[j]);
            }
            // A short batch is not recorded as EMPTY: under primed
            // allocation failure a short count can mean OOM, not empty.
          } catch (const std::bad_alloc&) {
          }
        }
      }
      q.close();  // fires blk_close_pre_seal on the victim
    } catch (const fault::InjectedCrash& c) {
      EXPECT_STREQ(c.point, point);
      out.victim_crashed = true;  // joined before main reads this
    } catch (const std::bad_alloc&) {
      // An OOM storm may surface as a throw from a pop path; the values
      // accounting below still must hold exactly.
    }
    Inj::set_victim(false);
    {
      std::lock_guard<std::mutex> g(merge_mu);
      out.pushed_ok.insert(out.pushed_ok.end(), pushed.begin(), pushed.end());
      out.popped.insert(out.popped.end(), popped.begin(), popped.end());
      for (auto& p : in_flight) pending_enq.push_back(p);
    }
    helpers_go.store(true, std::memory_order_release);  // even after a crash
    victim_done.store(true, std::memory_order_release);
  });

  std::thread helpers[2];
  for (unsigned t = 0; t < 2; ++t) {
    helpers[t] = std::thread([&, t] {
      while (!helpers_go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::mt19937_64 rng(fault_test::fault_seed() ^ (t + 1) ^
                          std::hash<std::string>{}(point));
      std::vector<uint64_t> pushed, popped;
      MQ::Handle h = q.get_handle();
      for (uint64_t seq = 1; seq <= 40; ++seq) {
        uint64_t v = val(t + 1, seq);
        uint64_t ts = hlog[t]->invoke();
        if (q.push_status(h, v) == PushStatus::kOk) {
          hlog[t]->complete(lin::OpKind::kEnqueue, v, ts);
          pushed.push_back(v);
        }
        if (rng() % 3 == 0) {
          uint64_t pts = hlog[t]->invoke();
          try {
            if (auto got = q.try_pop(h)) {
              hlog[t]->complete(lin::OpKind::kDequeue, *got, pts);
              popped.push_back(*got);
            } else {
              hlog[t]->complete(lin::OpKind::kDequeueEmpty, 0, pts);
            }
          } catch (const std::bad_alloc&) {
          }
        }
      }
      std::lock_guard<std::mutex> g(merge_mu);
      out.pushed_ok.insert(out.pushed_ok.end(), pushed.begin(), pushed.end());
      out.popped.insert(out.popped.end(), popped.begin(), popped.end());
    });
  }

  // Keep the global step counter moving so a finite stall always serves out
  // (the victim may park before the helpers are released).
  while (!victim_done.load(std::memory_order_acquire)) {
    Inj::inject("matrix_pump");
    std::this_thread::yield();
  }
  victim.join();
  for (auto& th : helpers) th.join();

  out.fired = Inj::fired(point);
  out.crashes = Inj::crashes();
  out.stalls = Inj::stalls();
  Inj::reset();  // memory pressure off; drain must see the whole residue

  q.close();  // idempotent; recovers a close the victim crashed out of
  {
    MQ::Handle h = q.get_handle();
    for (;;) {
      uint64_t ts = mlog->invoke();
      auto v = q.try_pop(h);
      if (!v) {
        mlog->complete(lin::OpKind::kDequeueEmpty, 0, ts);
        break;
      }
      mlog->complete(lin::OpKind::kDequeue, *v, ts);
      out.popped.push_back(*v);
    }
  }

  OpStats s = q.stats();
  out.orphan_drops = s.orphan_drops.load(std::memory_order_relaxed);
  out.adopted = s.adopted_handles.load(std::memory_order_relaxed);

  out.history = rec.collect();
  // A push in flight at the crash may have been committed by the adopter:
  // if its value surfaced, it linearizes somewhere after its invocation.
  for (const auto& [v, ts] : pending_enq) {
    if (std::find(out.popped.begin(), out.popped.end(), v) !=
        out.popped.end()) {
      out.history.push_back(
          lin::Op{lin::OpKind::kEnqueue, /*thread=*/0, v, ts, kPendingTs});
    }
    out.in_flight.push_back(v);
  }
  return out;
}

void validate(const char* point, fault::Action action, const Outcome& out) {
  SCOPED_TRACE(std::string(point) + " / action " +
               std::to_string(static_cast<int>(action)));

  if (deterministic_point(point)) {
    EXPECT_GE(out.fired, 1u) << "armed point never reached";
  }

  // No duplicates, ever.
  std::vector<uint64_t> popped = out.popped;
  std::sort(popped.begin(), popped.end());
  ASSERT_TRUE(std::adjacent_find(popped.begin(), popped.end()) ==
              popped.end())
      << "duplicate dequeue";

  // Everything popped was pushed (ok or in flight at the crash).
  std::set<uint64_t> legal(out.pushed_ok.begin(), out.pushed_ok.end());
  legal.insert(out.in_flight.begin(), out.in_flight.end());
  for (uint64_t v : popped) {
    ASSERT_TRUE(legal.count(v) != 0) << "dequeued unknown value " << v;
  }

  // Loss accounting.
  std::set<uint64_t> popped_set(popped.begin(), popped.end());
  std::vector<uint64_t> missing;
  for (uint64_t v : out.pushed_ok) {
    if (popped_set.count(v) == 0) missing.push_back(v);
  }
  if (out.crashes == 0) {
    EXPECT_TRUE(out.in_flight.empty());
    EXPECT_EQ(out.orphan_drops, 0u);
    EXPECT_TRUE(missing.empty())
        << missing.size() << " values lost without any crash";
  } else {
    const uint64_t allowance =
        deq_loss_point(point) ? kBulkPush + out.orphan_drops
                              : out.orphan_drops;
    EXPECT_LE(missing.size(), allowance)
        << "lost more values than a single dequeue-side crash can strand";
  }

  // The linearizability oracle runs whenever the history is complete: no
  // stranded values, no adopter-dropped values. (Synthetic pending-enqueue
  // ops cover crash-then-adopted pushes.)
  if (out.orphan_drops == 0 && missing.empty()) {
    lin::CheckResult res = lin::check_queue_history(out.history);
    EXPECT_TRUE(res.linearizable) << res.violation;
  }
}

TEST(FaultInjectionMatrix, StallEveryPoint) {
  for (const char* point : fault::kInjectionPoints) {
    Outcome out = run_experiment(point, fault::Action::kStall, 200);
    EXPECT_EQ(out.crashes, 0u) << point << ": finite stall must not crash";
    validate(point, fault::Action::kStall, out);
  }
}

TEST(FaultInjectionMatrix, CrashEveryPoint) {
  for (const char* point : fault::kInjectionPoints) {
    Outcome out = run_experiment(point, fault::Action::kCrash, 0);
    if (out.fired > 0) {
      EXPECT_TRUE(out.victim_crashed) << point;
      EXPECT_GE(out.crashes, 1u) << point;
    }
    validate(point, fault::Action::kCrash, out);
  }
}

TEST(FaultInjectionMatrix, AllocFailEveryPoint) {
  for (const char* point : fault::kInjectionPoints) {
    // A long storm: retries and the 2-segment reserve are both exhausted,
    // so operations must surface kNoMem / throw — and still account
    // exactly (no crash: the fault is in the allocator, not the thread).
    Outcome out = run_experiment(point, fault::Action::kAllocFail, 10000);
    EXPECT_EQ(out.crashes, 0u) << point;
    validate(point, fault::Action::kAllocFail, out);
  }
}

TEST(FaultInjectionMatrix, CatalogMatchesCallSites) {
  // The matrix iterates the catalog; if someone adds a WFQ_INJECT call
  // with a new name, it must be added to kInjectionPoints (docs/TESTING.md
  // documents each entry) so the matrix covers it. 22 points cover the
  // WFQueue stack; PR 6 added 5 ring/wCQ points plus the producer-side
  // park (blk_push_prepark), exercised against the bounded backends in
  // tests/fault/wcq_fault_test.cpp; PR 8 added the sharded layer's steal
  // point, exercised in tests/fault/sharded_fault_test.cpp (the WFQueue
  // workload here never reaches them, which the matrix tolerates for
  // non-deterministic points); PR 9 added 9 shm_* points in the
  // cross-process queue, exercised in-process by tests/ipc/ and as real
  // SIGKILLs by tools/soak --shm --kill9.
  EXPECT_EQ(fault::kInjectionPointCount, 38u);
}

}  // namespace
}  // namespace wfq
