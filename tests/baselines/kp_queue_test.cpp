// Correctness tests for the Kogan-Petrank wait-free queue baseline.
#include "baselines/kp_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include "support/queue_test_util.hpp"

namespace wfq::baselines {
namespace {

TEST(KpQueue, StartsEmpty) {
  KPQueue<uint64_t> q(8);
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(KpQueue, SequentialFifo) {
  KPQueue<uint64_t> q(8);
  test::run_sequential_fifo(q, 3000);
}

TEST(KpQueue, ReusableAfterEmpty) {
  KPQueue<uint64_t> q(8);
  auto h = q.get_handle();
  for (int round = 0; round < 100; ++round) {
    EXPECT_FALSE(q.dequeue(h).has_value());
    q.enqueue(h, round + 1);
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, uint64_t(round + 1));
  }
}

TEST(KpQueue, BoxedPayloads) {
  KPQueue<std::string> q(8);
  auto h = q.get_handle();
  q.enqueue(h, "alpha");
  q.enqueue(h, "beta");
  EXPECT_EQ(q.dequeue(h), "alpha");
  EXPECT_EQ(q.dequeue(h), "beta");
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(KpQueue, HandleSlotsAreRecycled) {
  KPQueue<uint64_t> q(2);  // tiny registry
  for (int i = 0; i < 10; ++i) {
    auto h = q.get_handle();  // must not exhaust the 2-slot registry
    q.enqueue(h, i + 1);
    EXPECT_EQ(q.dequeue(h), uint64_t(i + 1));
  }
}

TEST(KpQueue, MpmcPropertyDefault) {
  KPQueue<uint64_t> q(16);
  test::run_mpmc_property(q, 4, 4, 1500);
}

TEST(KpQueue, MpmcPropertyProducerHeavy) {
  KPQueue<uint64_t> q(16);
  test::run_mpmc_property(q, 6, 2, 1000);
}

TEST(KpQueue, MpmcPropertyConsumerHeavy) {
  KPQueue<uint64_t> q(16);
  test::run_mpmc_property(q, 2, 6, 1000);
}

TEST(KpQueue, PairsConservation) {
  KPQueue<uint64_t> q(16);
  test::run_pairs_conservation(q, 8, 1200);
}

TEST(KpQueue, DestructionWithBacklogDoesNotLeak) {
  auto* q = new KPQueue<std::string>(8);
  {
    auto h = q->get_handle();
    for (int i = 0; i < 500; ++i) q->enqueue(h, "x" + std::to_string(i));
  }
  delete q;  // ASan validates nodes + descriptors freed
}

TEST(KpQueue, InterleavedMixedTraffic) {
  KPQueue<uint64_t> q(8);
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> ts;
  std::atomic<uint64_t> in{0}, out{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      uint64_t local_in = 0, local_out = 0;
      for (int i = 0; i < 1500; ++i) {
        uint64_t v = (uint64_t(t) << 32) | uint64_t(i + 1);
        q.enqueue(h, v);
        local_in += v;
        auto got = q.dequeue(h);
        if (got.has_value()) local_out += *got;
      }
      in.fetch_add(local_in);
      out.fetch_add(local_out);
    });
  }
  for (auto& t : ts) t.join();
  auto h = q.get_handle();
  for (;;) {
    auto got = q.dequeue(h);
    if (!got.has_value()) break;
    out.fetch_add(*got);
  }
  EXPECT_EQ(in.load(), out.load());
}

}  // namespace
}  // namespace wfq::baselines
